package obs

import (
	"strings"
	"testing"

	"ccnuma/internal/sim"
)

// TestSpanTiling checks the cursor-tiling core: checkpoints close half-open
// intervals under their stage, the residue before Finish lands in the fill
// stage, and the stages partition the end-to-end latency exactly.
func TestSpanTiling(t *testing.T) {
	s := NewSpanTracker(nil)
	s.Start(1, 0, 0x40, 100)
	s.SpanEnd(1, StageStall, 0, 110)  // [100,110) stall
	s.SpanEnd(1, StageBusArb, 0, 115) // [110,115) bus-arb
	s.SpanEnd(1, StageBus, 0, 140)    // [115,140) bus-xfer
	s.Finish(1, 150)                  // [140,150) fill

	a := s.Stats()
	if a.Completed != 1 || a.Violations != 0 {
		t.Fatalf("completed=%d violations=%d, want 1/0", a.Completed, a.Violations)
	}
	want := map[string]sim.Time{"stall": 10, "bus-arb": 5, "bus-xfer": 25, "fill": 10}
	var sum sim.Time
	for _, st := range a.Stages {
		if st.Total != want[st.Stage] {
			t.Errorf("stage %s = %d cycles, want %d", st.Stage, st.Total, want[st.Stage])
		}
		sum += st.Total
	}
	if int64(sum) != a.EndToEnd.Sum || a.EndToEnd.Sum != 50 {
		t.Errorf("stage sum %d vs end-to-end %d, want both 50", sum, a.EndToEnd.Sum)
	}
	if err := s.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestSpanBackwardCheckpointsIgnored checks that stale or duplicate
// checkpoints (at or before the cursor) attribute nothing rather than
// corrupt the tiling — chaos duplicates and replayed messages hit this.
func TestSpanBackwardCheckpointsIgnored(t *testing.T) {
	s := NewSpanTracker(nil)
	s.Start(7, 0, 0x80, 0)
	s.SpanEnd(7, StageBus, 0, 50)
	s.SpanEnd(7, StageWire, 0, 30) // backward: ignored
	s.SpanEnd(7, StageWire, 0, 50) // zero-length: ignored
	s.Finish(7, 60)
	a := s.Stats()
	for _, st := range a.Stages {
		if st.Stage == "wire" && st.Total != 0 {
			t.Errorf("backward checkpoint attributed %d cycles to wire", st.Total)
		}
	}
	if err := s.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestSpanEpochFilter checks episode filtering: once an epoch is set, a
// checkpoint carrying a different non-zero epoch is ignored, while epoch
// zero on either side remains a wildcard.
func TestSpanEpochFilter(t *testing.T) {
	s := NewSpanTracker(nil)
	s.Start(3, 0, 0xc0, 0)
	s.SetEpoch(3, 2)
	s.SpanEnd(3, StageWire, 1, 40) // stale episode: ignored
	s.SpanEnd(3, StageWire, 2, 30) // current episode
	s.SpanEnd(3, StageBus, 0, 35)  // wildcard side
	s.Finish(3, 35)
	a := s.Stats()
	for _, st := range a.Stages {
		switch st.Stage {
		case "wire":
			if st.Total != 30 {
				t.Errorf("wire = %d, want 30 (stale epoch must be ignored)", st.Total)
			}
		case "bus-xfer":
			if st.Total != 5 {
				t.Errorf("bus-xfer = %d, want 5 (zero epoch is a wildcard)", st.Total)
			}
		}
	}
	if err := s.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestSpanViolation checks the one true conservation failure: a transaction
// finishing before its own cursor (a component checkpointed cycles the
// processor never observed) is counted and fails CheckConservation.
func TestSpanViolation(t *testing.T) {
	s := NewSpanTracker(nil)
	s.Start(9, 0, 0x100, 0)
	s.SpanEnd(9, StageBus, 0, 100)
	s.Finish(9, 90)
	if s.Violations() != 1 {
		t.Fatalf("violations = %d, want 1", s.Violations())
	}
	err := s.CheckConservation()
	if err == nil || !strings.Contains(err.Error(), "violation") {
		t.Fatalf("CheckConservation = %v, want violation error", err)
	}
}

// TestSpanReclaim checks span-state lifecycle: Finish and Abandon both
// reclaim the open entry, unknown-transaction operations are no-ops, and a
// leaked open transaction fails CheckConservation.
func TestSpanReclaim(t *testing.T) {
	s := NewSpanTracker(nil)
	s.Start(1, 0, 0, 0)
	s.Start(2, 0, 0, 0)
	s.Start(3, 0, 0, 0)
	if s.OpenCount() != 3 {
		t.Fatalf("open = %d, want 3", s.OpenCount())
	}
	s.Finish(1, 10)
	s.Abandon(2)
	s.Finish(99, 10) // unknown: no-op
	s.Abandon(99)    // unknown: no-op
	if s.OpenCount() != 1 || s.Completed() != 1 {
		t.Fatalf("open=%d completed=%d, want 1/1", s.OpenCount(), s.Completed())
	}
	if err := s.CheckConservation(); err == nil || !strings.Contains(err.Error(), "leaked") {
		t.Fatalf("CheckConservation = %v, want leak error", err)
	}
	s.Abandon(3)
	if err := s.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestSpanNilTracker checks that the disabled (nil) tracker accepts every
// call as a no-op, so call sites need no attribution-knob branches.
func TestSpanNilTracker(t *testing.T) {
	var s *SpanTracker
	if s.Enabled() {
		t.Fatal("nil tracker reports enabled")
	}
	s.Start(1, 0, 0, 0)
	s.SetEpoch(1, 1)
	s.SpanBegin(1, StageStall, 0, 0)
	s.SpanEnd(1, StageStall, 0, 10)
	s.Finish(1, 10)
	s.Abandon(1)
	if s.OpenCount() != 0 || s.Completed() != 0 || s.Violations() != 0 {
		t.Fatal("nil tracker accumulated state")
	}
	if s.Stats() != nil {
		t.Fatal("nil tracker returned stats")
	}
	if err := s.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestSpanEvents checks the EvSpan emission contract the Chrome-trace and
// cctrace renderers rely on: begin markers, measured slices, and the finish
// event carrying the end-to-end latency.
func TestSpanEvents(t *testing.T) {
	tr := obsTracer(t)
	s := NewSpanTracker(tr)
	s.Start(5, 2, 0x40, 100)
	s.SpanBegin(5, StageStall, 0, 100)
	s.SpanEnd(5, StageStall, 0, 120)
	s.Finish(5, 130)
	evs := tr.Events()
	var begins, slices, finishes int
	var sliced sim.Time
	for i := range evs {
		if evs[i].Kind != EvSpan {
			continue
		}
		if evs[i].A != 5 {
			t.Errorf("span event txn = %d, want 5", evs[i].A)
		}
		switch evs[i].B {
		case spanMarkBegin:
			begins++
		case spanMarkSlice:
			slices++
			sliced += evs[i].Dur
		case spanMarkFinish:
			finishes++
			if evs[i].Dur != 30 {
				t.Errorf("finish dur = %d, want 30", evs[i].Dur)
			}
		}
	}
	if begins != 1 || slices != 2 || finishes != 1 {
		t.Fatalf("begins=%d slices=%d finishes=%d, want 1/2/1 (fill residue emits a slice)",
			begins, slices, finishes)
	}
	if sliced != 30 {
		t.Fatalf("slice durations sum to %d, want 30 (slices must tile the lifetime)", sliced)
	}
}

func obsTracer(t *testing.T) *Tracer {
	t.Helper()
	return NewTracer()
}
