package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ccnuma/internal/config"
	"ccnuma/internal/sim"
	"ccnuma/internal/stats"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// syntheticRun builds a deterministic Run so the artifact document is
// byte-stable for golden comparison.
func syntheticRun() (*config.Config, *stats.Run) {
	cfg := config.Base()
	cfg, _ = cfg.WithArch("PPC")
	cfg.Nodes, cfg.ProcsPerNode = 4, 2

	r := stats.NewRun(cfg.ArchName(), "ocean", cfg.EngineCounts())
	r.ExecTime = 47083
	r.Instructions = 64704
	for n := range r.Controllers {
		c := &r.Controllers[n]
		c.Arrivals = 400 - uint64(n)
		e := &c.Engines[0]
		e.Busy = 15000
		e.Dispatches = c.Arrivals
		e.QueueDelay = 8000
		for i := 0; i < 100; i++ {
			e.QueueDelayHist.Add(sim.Time(i * (n + 1)))
		}
		c.NoteArrival(100)
		c.NoteArrival(300)
	}
	for i := 0; i < 400; i++ {
		r.MissLatency.Add(sim.Time(120 + i))
	}
	r.Add("bus.txns", 1234)
	r.Add("net.msgs", 987)
	return &cfg, r
}

func TestArtifactGolden(t *testing.T) {
	cfg, r := syntheticRun()
	a := NewArtifact("ccsim", "test", cfg, r)

	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "artifact_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("artifact JSON drifted from golden file (re-run with -update if intentional)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	cfg, r := syntheticRun()
	a := NewArtifact("ccsim", "test", cfg, r)
	p := 36.9
	a.PenaltyVsBaselinePct = &p

	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Artifact
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("artifact does not round-trip through encoding/json: %v", err)
	}
	if !reflect.DeepEqual(a, &back) {
		t.Errorf("round-trip mismatch:\nout:  %+v\nback: %+v", a, &back)
	}
	if back.Schema != ArtifactSchema {
		t.Errorf("schema = %q, want %q", back.Schema, ArtifactSchema)
	}
	if back.QueueDelay.Count != 400 {
		t.Errorf("queue-delay count = %d, want 400", back.QueueDelay.Count)
	}
	if back.MissLatency.P50 <= 0 || back.MissLatency.P99 < back.MissLatency.P50 {
		t.Errorf("percentiles not ordered: p50=%v p99=%v", back.MissLatency.P50, back.MissLatency.P99)
	}
	if got := *back.PenaltyVsBaselinePct; got != 36.9 {
		t.Errorf("penalty = %v", got)
	}
}

func TestHistogramDocBucketsTile(t *testing.T) {
	var h stats.Histogram
	for i := 1; i <= 1000; i++ {
		h.Add(sim.Time(i))
	}
	doc := NewHistogramDoc(&h)
	if doc.Count != 1000 || doc.MaxCycles != 1000 {
		t.Fatalf("doc = %+v", doc)
	}
	var total uint64
	for i, b := range doc.Buckets {
		total += b.Count
		if b.Lo >= b.Hi {
			t.Errorf("bucket %d: lo %d >= hi %d", i, b.Lo, b.Hi)
		}
		if i > 0 && b.Lo != doc.Buckets[i-1].Hi {
			t.Errorf("bucket %d not contiguous: lo %d after hi %d", i, b.Lo, doc.Buckets[i-1].Hi)
		}
	}
	if total != 1000 {
		t.Errorf("bucket counts sum to %d, want 1000", total)
	}
}
