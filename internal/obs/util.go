// Runner-pool utilization document: the wall-clock busy/idle worker series
// recorded by internal/runner's usage observer, reduced to the artifact
// form the benchmark harness embeds. Scheduling gaps — a serial pilot
// phase, a straggler job pinning one worker while the rest sit idle —
// show up directly as buckets with Busy well below the worker count.
package obs

import "ccnuma/internal/runner"

// RunnerUtilDoc summarizes one observed pool run.
type RunnerUtilDoc struct {
	// Jobs is how many pool jobs ran while the recorder was installed.
	Jobs int `json:"jobs"`
	// WallMs spans the first job start to the last job end.
	WallMs float64 `json:"wall_ms"`
	// BusyMs is the busy-worker integral: worker-milliseconds of actual
	// job execution. BusyMs / WallMs is the mean busy-worker count.
	BusyMs float64 `json:"busy_ms"`
	// AvgBusy and PeakBusy are the mean and maximum concurrent jobs.
	AvgBusy  float64 `json:"avg_busy"`
	PeakBusy int     `json:"peak_busy"`
	// Series is the bucketed busy-workers-over-time curve.
	Series []runner.UtilSample `json:"series,omitempty"`
}

// NewRunnerUtilDoc reduces a usage recording to its artifact document with
// the given series resolution. Returns nil when nothing was recorded.
func NewRunnerUtilDoc(u *runner.Usage, buckets int) *RunnerUtilDoc {
	jobs, wallMs, busyMs, peak, series := u.Summary(buckets)
	if wallMs <= 0 {
		return nil
	}
	return &RunnerUtilDoc{
		Jobs: jobs, WallMs: wallMs, BusyMs: busyMs,
		AvgBusy: busyMs / wallMs, PeakBusy: peak, Series: series,
	}
}
