package obs

import (
	"encoding/json"
	"io"
	"os"

	"ccnuma/internal/config"
	"ccnuma/internal/stats"
)

// ArtifactSchema is the version tag of the run-artifact document. Bump it
// whenever a field changes meaning; trajectory tooling keys on it.
const ArtifactSchema = "ccnuma-run/v1"

// Artifact is the versioned, machine-readable record of one simulation run:
// the knobs that produced it, the headline metrics of the paper's tables,
// and the latency distributions with percentiles. It is the document behind
// ccsim/ccsweep/cctables -json and BENCH_*.json trajectory tracking.
type Artifact struct {
	Schema string `json:"schema"`
	Tool   string `json:"tool"`
	App    string `json:"app"`
	Arch   string `json:"arch"`
	Size   string `json:"size,omitempty"`
	// Seed is the workload/fault seed the run was launched with (0 when the
	// tool ran unseeded); with it, any chaos run replays exactly.
	Seed int64 `json:"seed,omitempty"`

	// Scenario embeds the canonical ccnuma-scenario/v1 document that
	// produced this run, byte-for-byte as internal/scenario canonicalized
	// it, and ScenarioFingerprint is its stable hash. Together they make
	// every artifact self-describing: `ccsim -replay artifact.json` re-runs
	// the embedded scenario and reproduces the artifact exactly.
	Scenario            json.RawMessage `json:"scenario,omitempty"`
	ScenarioFingerprint string          `json:"scenarioFingerprint,omitempty"`

	Config  ArtifactConfig  `json:"config"`
	Metrics ArtifactMetrics `json:"metrics"`

	// MissLatency is the cache-miss service-time distribution over all
	// processors; QueueDelay the arrival-to-dispatch delay distribution over
	// all controller engines.
	MissLatency HistogramDoc `json:"missLatency"`
	QueueDelay  HistogramDoc `json:"queueDelay"`

	Counters map[string]uint64 `json:"counters,omitempty"`

	// PenaltyVsBaselinePct is the PP penalty against a baseline run when the
	// producing tool had one (ccsweep's first architecture), else absent.
	PenaltyVsBaselinePct *float64 `json:"penaltyVsBaselinePct,omitempty"`

	// Tooling records the static-analysis and model-checking evidence that
	// accompanied the run (cclint -json and ccverify -json output), when the
	// producing pipeline attached it. Absent for plain simulation runs.
	Tooling *ToolingDoc `json:"tooling,omitempty"`

	// Recovery records fault-injection and NACK/retry recovery activity.
	// Absent when the robustness knobs were off and no faults were injected.
	Recovery *RecoveryDoc `json:"recovery,omitempty"`

	// Attribution is the per-stage causal decomposition of miss latency.
	// Absent unless the run enabled the attribution knob.
	Attribution *AttributionDoc `json:"attribution,omitempty"`

	// Perf records host engine throughput (events/sec, allocs/event) when
	// the producing tool measured it. It describes the host rather than the
	// simulated machine, so it is absent from artifacts that must be
	// byte-identical across runs.
	Perf *PerfDoc `json:"perf,omitempty"`
}

// RecoveryDoc is the fault/recovery section of a run artifact: the
// configured robustness knobs, what the fault layer injected, and how the
// protocol recovered.
type RecoveryDoc struct {
	// Knobs.
	QueueDepth     int   `json:"queueDepth"`
	NIPortDepth    int   `json:"niPortDepth"`
	RetryBudget    int   `json:"retryBudget"`
	RequestTimeout int64 `json:"requestTimeoutCycles"`
	NetReliable    bool  `json:"netReliable"`

	// Injection activity (what actually fired, by fault kind name).
	FaultsApplied map[string]uint64 `json:"faultsApplied,omitempty"`

	// Recovery activity.
	NacksSent   uint64 `json:"nacksSent"`
	NacksRecv   uint64 `json:"nacksRecv"`
	Retries     uint64 `json:"retries"`
	Timeouts    uint64 `json:"timeouts"`
	BusAborts   uint64 `json:"busAborts"`
	StrayDrops  uint64 `json:"strayDrops"`
	Retransmits uint64 `json:"linkRetransmits"`
	Overflows   uint64 `json:"niOverflows"`

	// RetryLatency is the issue-to-fill service-time distribution of
	// requests that needed at least one retry.
	RetryLatency HistogramDoc `json:"retryLatency"`

	// Failures classifies the runs of the producing campaign that did NOT
	// recover, machine-readably: a consumer deciding whether to re-run can
	// distinguish a pathological scenario (class "retry-budget-exhausted":
	// the protocol's fail-stop fired, re-running reproduces it) from an
	// unclassified fault. Empty when every run recovered.
	Failures []FailureDoc `json:"failures,omitempty"`
}

// Failure classes. A class is a stable, machine-readable name; Message is
// the human diagnostic.
const (
	// FailureRetryBudget marks the protocol's deterministic fail-stop:
	// re-running the same scenario reproduces the failure, so retrying is
	// pointless (the scenario itself is unserviceable).
	FailureRetryBudget = "retry-budget-exhausted"
	// FailurePanic is an unclassified panic; FailureError an unclassified
	// error return. Either may be transient from a harness's point of view
	// (worth a bounded retry).
	FailurePanic = "panic"
	FailureError = "error"
)

// FailureDoc is one classified run failure in a ccnuma-run/v1 artifact.
type FailureDoc struct {
	Class   string `json:"class"`
	Message string `json:"message"`
	// Seed identifies the failing run within a seeded campaign (0 outside
	// one).
	Seed int64 `json:"seed,omitempty"`
	// Node/Line/Attempts locate a retry-budget exhaustion (absent for
	// other classes). Line is hex-formatted for readability.
	Node     int    `json:"node,omitempty"`
	Line     string `json:"line,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
}

// Pathological reports whether the failure is deterministic — re-running
// the identical scenario will fail the same way — so a serving layer must
// not spend retries on it.
func (f *FailureDoc) Pathological() bool {
	return f.Class == FailureRetryBudget
}

// AttributionDoc is the latency-attribution section of a run artifact:
// end-to-end miss latency decomposed cycle-exactly into stage segments
// over every completed transaction.
type AttributionDoc struct {
	Completed  uint64 `json:"completed"`
	Violations uint64 `json:"violations"` // conservation failures; must be 0
	// EndToEnd is the per-transaction end-to-end latency distribution (it
	// matches the processor-side missLatency section for tracked misses).
	EndToEnd HistogramDoc `json:"endToEnd"`
	// QueueSharePct is the share of all attributed cycles spent waiting in
	// protocol-engine input queues — the paper's occupancy bottleneck.
	QueueSharePct float64               `json:"queueSharePct"`
	Stages        []AttributionStageDoc `json:"stages"`
}

// AttributionStageDoc is one stage's aggregate share.
type AttributionStageDoc struct {
	Stage    string  `json:"stage"`
	Cycles   int64   `json:"cycles"`
	SharePct float64 `json:"sharePct"`
	// Hist is the per-transaction distribution of this stage's cycles,
	// over transactions that spent time in the stage.
	Hist HistogramDoc `json:"hist"`
}

// NewAttributionDoc reduces a run's attribution aggregate to its document
// form (nil in, nil out).
func NewAttributionDoc(a *stats.Attribution) *AttributionDoc {
	if a == nil {
		return nil
	}
	doc := &AttributionDoc{
		Completed:     a.Completed,
		Violations:    a.Violations,
		EndToEnd:      NewHistogramDoc(&a.EndToEnd),
		QueueSharePct: 100 * a.StageShare("cc-queue"),
	}
	total := float64(a.EndToEnd.Sum)
	for i := range a.Stages {
		st := &a.Stages[i]
		if st.Total == 0 {
			continue
		}
		share := 0.0
		if total > 0 {
			share = 100 * float64(st.Total) / total
		}
		doc.Stages = append(doc.Stages, AttributionStageDoc{
			Stage:    st.Stage,
			Cycles:   int64(st.Total),
			SharePct: share,
			Hist:     NewHistogramDoc(&st.Hist),
		})
	}
	return doc
}

// ToolingDoc groups the verification evidence attachable to an artifact.
type ToolingDoc struct {
	Lint   *LintReport   `json:"lint,omitempty"`
	Verify *VerifyReport `json:"verify,omitempty"`
}

// LintReport is the document cclint -json emits: the number of packages
// analyzed and every remaining finding. cmd/cclint builds this struct
// directly, so the schema here is the schema on the wire.
type LintReport struct {
	Packages int              `json:"packages"`
	Findings []LintFindingDoc `json:"findings"`
}

// LintFindingDoc is one cclint diagnostic.
type LintFindingDoc struct {
	Pos     string `json:"pos"` // file:line:col
	Check   string `json:"check"`
	Message string `json:"message"`
}

// VerifyReport mirrors ccverify -json output (verify.Result): the size of
// the explored state space and any invariant violations with their replay
// paths.
type VerifyReport struct {
	States         int                  `json:"states"`
	Edges          int                  `json:"edges"`
	Races          int                  `json:"races"`
	Truncated      bool                 `json:"truncated"`
	RacesTruncated bool                 `json:"racesTruncated"`
	Violations     []VerifyViolationDoc `json:"violations"`
}

// VerifyViolationDoc is one model-checker violation.
type VerifyViolationDoc struct {
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
	Path   string `json:"path"`
}

// ParseLintReport decodes cclint -json output for attachment to an
// artifact's tooling section.
func ParseLintReport(data []byte) (*LintReport, error) {
	var r LintReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// ParseVerifyReport decodes ccverify -json output for attachment to an
// artifact's tooling section.
func ParseVerifyReport(data []byte) (*VerifyReport, error) {
	var r VerifyReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// ArtifactConfig echoes the architectural parameters that shaped the run.
type ArtifactConfig struct {
	Nodes        int `json:"nodes"`
	ProcsPerNode int `json:"procsPerNode"`
	Engines      int `json:"engines"`
	// NodeArchs echoes the per-node controller overrides of heterogeneous
	// machines (empty for the homogeneous configurations).
	NodeArchs       []string `json:"nodeArchs,omitempty"`
	Split           string   `json:"split"`
	Arbitration     string   `json:"arbitration"`
	LineSize        int      `json:"lineSize"`
	NetLatency      int64    `json:"netLatencyCycles"`
	Topology        string   `json:"topology"`
	DirCacheEntries int      `json:"dirCacheEntries"`
	DirectDataPath  bool     `json:"directDataPath"`
}

// ArtifactMetrics carries the headline quantities of Tables 6 and 7.
type ArtifactMetrics struct {
	ExecCycles     int64   `json:"execCycles"`
	ExecNs         float64 `json:"execNs"`
	Instructions   uint64  `json:"instructions"`
	Requests       uint64  `json:"requests"` // requests to coherence controllers
	RCCPIx1000     float64 `json:"rccpiX1000"`
	UtilizationPct float64 `json:"utilizationPct"`
	QueueDelayNs   float64 `json:"queueDelayNs"`
	ArrivalPerUs   float64 `json:"arrivalPerUs"`
}

// HistogramDoc is a latency distribution with interpolated percentiles and
// the raw power-of-two buckets (only non-empty buckets are listed).
type HistogramDoc struct {
	Count      uint64      `json:"count"`
	MeanCycles float64     `json:"meanCycles"`
	P50        float64     `json:"p50Cycles"`
	P90        float64     `json:"p90Cycles"`
	P95        float64     `json:"p95Cycles"`
	P99        float64     `json:"p99Cycles"`
	MaxCycles  int64       `json:"maxCycles"`
	Buckets    []BucketDoc `json:"buckets,omitempty"`
}

// BucketDoc is one histogram bucket: values in [Lo, Hi).
type BucketDoc struct {
	Lo    int64  `json:"loCycles"`
	Hi    int64  `json:"hiCycles"`
	Count uint64 `json:"count"`
}

// NewHistogramDoc reduces a stats.Histogram to its document form.
func NewHistogramDoc(h *stats.Histogram) HistogramDoc {
	doc := HistogramDoc{
		Count:      h.Count,
		MeanCycles: h.Mean(),
		P50:        h.Percentile(50),
		P90:        h.Percentile(90),
		P95:        h.Percentile(95),
		P99:        h.Percentile(99),
		MaxCycles:  h.MaxVal,
	}
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		lo, hi := stats.BucketBounds(i)
		doc.Buckets = append(doc.Buckets, BucketDoc{Lo: lo, Hi: hi, Count: c})
	}
	return doc
}

// NewArtifact builds the run document from a finished run and its
// configuration. size may be empty when the tool has no size classes.
func NewArtifact(tool, size string, cfg *config.Config, r *stats.Run) *Artifact {
	qd := r.QueueDelayHistogram()
	return &Artifact{
		Schema: ArtifactSchema,
		Tool:   tool,
		App:    r.App,
		Arch:   r.Arch,
		Size:   size,
		Config: ArtifactConfig{
			Nodes:           cfg.Nodes,
			ProcsPerNode:    cfg.ProcsPerNode,
			Engines:         cfg.EngineCount(),
			NodeArchs:       cfg.NodeArchs,
			Split:           cfg.Split.String(),
			Arbitration:     cfg.Arbitration.String(),
			LineSize:        cfg.LineSize,
			NetLatency:      int64(cfg.NetLatency),
			Topology:        cfg.Topology.String(),
			DirCacheEntries: cfg.DirCacheEntries,
			DirectDataPath:  cfg.DirectDataPath,
		},
		Metrics: ArtifactMetrics{
			ExecCycles:     int64(r.ExecTime),
			ExecNs:         r.ExecTime.Nanoseconds(),
			Instructions:   r.Instructions,
			Requests:       r.TotalArrivals(),
			RCCPIx1000:     1000 * r.RCCPI(),
			UtilizationPct: 100 * r.AvgUtilization(-1),
			QueueDelayNs:   r.AvgQueueDelayNs(-1),
			ArrivalPerUs:   r.ArrivalRatePerMicrosecond(),
		},
		MissLatency: NewHistogramDoc(&r.MissLatency),
		QueueDelay:  NewHistogramDoc(&qd),
		Counters:    r.Counters,
		Attribution: NewAttributionDoc(r.Attribution),
	}
}

// NewRecoveryDoc builds the fault/recovery section from the configured
// knobs and a finished run's counters. faultsApplied is the injector's
// name → count map (nil when the run had no fault schedule).
func NewRecoveryDoc(cfg *config.Config, r *stats.Run, faultsApplied map[string]uint64) *RecoveryDoc {
	ns, nr, rt, to, ba, sd := r.RecoveryTotals()
	rl := r.RetryLatencyHistogram()
	return &RecoveryDoc{
		QueueDepth:     cfg.QueueDepth,
		NIPortDepth:    cfg.NIPortDepth,
		RetryBudget:    cfg.RetryBudget,
		RequestTimeout: int64(cfg.RequestTimeout),
		NetReliable:    cfg.NetReliable,
		FaultsApplied:  faultsApplied,
		NacksSent:      ns,
		NacksRecv:      nr,
		Retries:        rt,
		Timeouts:       to,
		BusAborts:      ba,
		StrayDrops:     sd,
		Retransmits:    r.Counter("linkRetransmits"),
		Overflows:      r.Counter("niOverflows"),
		RetryLatency:   NewHistogramDoc(&rl),
	}
}

// WriteJSON emits the artifact as indented JSON.
func (a *Artifact) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(a)
}

// WriteFile writes the artifact document to path.
func (a *Artifact) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = a.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteArtifactsFile writes several artifacts (e.g. one per sweep point) as
// a JSON array document.
func WriteArtifactsFile(path string, arts []*Artifact) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	err = enc.Encode(arts)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
