// Integration: a real (small, deterministic) simulation produces a coherent
// event stream, a loadable Chrome trace, and a populated time series. The
// external test package lets us import machine without an import cycle.
package obs_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"ccnuma/internal/config"
	"ccnuma/internal/machine"
	"ccnuma/internal/obs"
	"ccnuma/internal/workload"
)

// runTraced simulates the micro workload at test size with tracing and
// sampling attached.
func runTraced(t *testing.T) (*obs.Tracer, *obs.Sampler) {
	t.Helper()
	cfg := config.Base()
	cfg, err := cfg.WithArch("PPC")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Nodes, cfg.ProcsPerNode = 4, 2
	cfg.SimLimit = 1_000_000_000

	tr := obs.NewTracer(obs.WithBuffer(1 << 16))
	m, err := machine.NewTraced(cfg, "micro", tr)
	if err != nil {
		t.Fatal(err)
	}
	s := obs.NewSampler(1000)
	m.AttachSampler(s)

	w, err := workload.New("micro", workload.SizeTest, m.NProcs())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Setup(m); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(w.Body); err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	return tr, s
}

func TestTracedRun(t *testing.T) {
	tr, s := runTraced(t)

	evs := tr.Events()
	if len(evs) == 0 {
		t.Fatal("traced run recorded no events")
	}
	kinds := map[obs.EventKind]int{}
	lastAt := evs[0].At
	for i := range evs {
		ev := &evs[i]
		kinds[ev.Kind]++
		if ev.At < lastAt {
			t.Fatalf("event %d out of chronological order: %d after %d", i, ev.At, lastAt)
		}
		lastAt = ev.At
		if ev.Text() == "" {
			t.Fatalf("event %d renders empty", i)
		}
	}
	// Every part of the model must have spoken: dispatches, queue movements,
	// bus strobes, network traffic in both directions, directory accesses,
	// and cache transitions.
	for _, k := range []obs.EventKind{
		obs.EvDispatch, obs.EvEnqueue, obs.EvDequeue, obs.EvBusStrobe,
		obs.EvNetSend, obs.EvNetRecv, obs.EvDirRead, obs.EvDirWrite, obs.EvCache,
	} {
		if kinds[k] == 0 {
			t.Errorf("no %v events recorded", k)
		}
	}
	// Conservation: every enqueue is eventually dequeued (queues drain by
	// the end of a successful run).
	if kinds[obs.EvEnqueue] != kinds[obs.EvDequeue] {
		t.Errorf("enqueues %d != dequeues %d", kinds[obs.EvEnqueue], kinds[obs.EvDequeue])
	}
	// Each dispatch consumed exactly one queued work item.
	if kinds[obs.EvDispatch] != kinds[obs.EvDequeue] {
		t.Errorf("dispatches %d != dequeues %d", kinds[obs.EvDispatch], kinds[obs.EvDequeue])
	}
	// Network conservation: crossbar delivery loses nothing.
	if kinds[obs.EvNetSend] != kinds[obs.EvNetRecv] {
		t.Errorf("sends %d != recvs %d", kinds[obs.EvNetSend], kinds[obs.EvNetRecv])
	}

	// The trace must export as valid Chrome trace_event JSON.
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, evs); err != nil {
		t.Fatal(err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace invalid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"].([]interface{}); !ok {
		t.Fatal("chrome trace missing traceEvents array")
	}

	// The sampler must have probed at least once and seen activity.
	rows := s.Samples()
	if len(rows) == 0 {
		t.Fatal("sampler collected no rows")
	}
	anyUtil := false
	for i := range rows {
		r := &rows[i]
		if r.At <= 0 || r.Node < 0 || r.Node >= 4 {
			t.Fatalf("row %d malformed: %+v", i, r)
		}
		if r.EngineUtilPct > 0 || r.BusDataUtilPct > 0 {
			anyUtil = true
		}
	}
	if !anyUtil {
		t.Error("no sample row shows any engine or bus activity")
	}
}

func TestTracedRunDeterministic(t *testing.T) {
	tr1, _ := runTraced(t)
	tr2, _ := runTraced(t)
	e1, e2 := tr1.Events(), tr2.Events()
	if len(e1) != len(e2) {
		t.Fatalf("run 1 recorded %d events, run 2 %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("event %d differs between identical runs:\n%s\n%s", i, e1[i].Text(), e2[i].Text())
		}
	}
}
