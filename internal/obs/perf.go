package obs

import (
	"fmt"
	"runtime"
	"time"
)

// PerfDoc is the engine-throughput section of a run artifact: how fast the
// host executed simulated events and how much heap it allocated per event.
// Unlike every other artifact section it describes the host, not the
// simulated machine, so identical simulations produce different PerfDoc
// values; tools that need byte-identical artifacts (the determinism tests)
// must leave it unset.
type PerfDoc struct {
	// Events is the number of engine events the measured section executed.
	Events uint64 `json:"events"`
	// WallMs is the measured wall-clock duration in milliseconds.
	WallMs float64 `json:"wall_ms"`
	// EventsPerSec is Events divided by the wall-clock duration.
	EventsPerSec float64 `json:"events_per_sec"`
	// AllocsPerEvent is heap allocations (runtime mallocs) per event.
	AllocsPerEvent float64 `json:"allocs_per_event"`
	// BytesPerEvent is heap bytes allocated per event.
	BytesPerEvent float64 `json:"bytes_per_event"`
}

func (p PerfDoc) String() string {
	return fmt.Sprintf("%d events in %.1f ms: %.2f Mevents/s, %.2f allocs/event, %.0f B/event",
		p.Events, p.WallMs, p.EventsPerSec/1e6, p.AllocsPerEvent, p.BytesPerEvent)
}

// MeasurePerf times fn and charges the heap allocations made during it to
// the engine events it reports executing. fn returns the event count (for
// a whole simulation, Engine.Executed after the run). Allocation counters
// come from runtime.ReadMemStats, so concurrent goroutines' allocations
// would be charged too: measure on an otherwise idle process, one
// simulation at a time.
func MeasurePerf(fn func() uint64) PerfDoc {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	events := fn()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	d := PerfDoc{
		Events: events,
		WallMs: float64(wall.Nanoseconds()) / 1e6,
	}
	if events > 0 {
		if wall > 0 {
			d.EventsPerSec = float64(events) / wall.Seconds()
		}
		d.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(events)
		d.BytesPerEvent = float64(after.TotalAlloc-before.TotalAlloc) / float64(events)
	}
	return d
}
