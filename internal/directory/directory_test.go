package directory

import (
	"testing"
	"testing/quick"

	"ccnuma/internal/config"
	"ccnuma/internal/sim"
)

func newDir(t *testing.T, mutate func(*config.Config)) (*Directory, *config.Config) {
	t.Helper()
	cfg := config.Base()
	if mutate != nil {
		mutate(&cfg)
	}
	eng := sim.NewEngine()
	return New(eng, &cfg, 0, nil), &cfg
}

func TestBitmapOperations(t *testing.T) {
	var b Bitmap
	b = b.Set(3).Set(7).Set(3)
	if b.Count() != 2 {
		t.Fatalf("count = %d, want 2", b.Count())
	}
	if !b.Has(3) || !b.Has(7) || b.Has(0) {
		t.Fatal("membership wrong")
	}
	b = b.Clear(3)
	if b.Has(3) || b.Count() != 1 {
		t.Fatal("clear failed")
	}
	var got []int
	Bitmap(0).Set(1).Set(15).Set(8).ForEach(func(n int) { got = append(got, n) })
	if len(got) != 3 || got[0] != 1 || got[1] != 8 || got[2] != 15 {
		t.Fatalf("ForEach order %v", got)
	}
}

func TestBitmapProperties(t *testing.T) {
	f := func(v uint64, n uint8) bool {
		b := Bitmap(v)
		node := int(n % 64)
		if !b.Set(node).Has(node) {
			return false
		}
		if b.Clear(node).Has(node) {
			return false
		}
		// Set then clear restores when the bit was absent.
		if !b.Has(node) && b.Set(node).Clear(node) != b {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLookupDefaultsToNoRemote(t *testing.T) {
	d, _ := newDir(t, nil)
	e := d.Lookup(0x1000)
	if e.State != NoRemote || e.Sharers != 0 {
		t.Fatalf("default entry %+v", e)
	}
}

func TestWriteThenLookup(t *testing.T) {
	d, _ := newDir(t, nil)
	d.Write(0, 0x1000, Entry{State: DirtyRemote, Owner: 5})
	e := d.Lookup(0x1000)
	if e.State != DirtyRemote || e.Owner != 5 {
		t.Fatalf("entry %+v", e)
	}
	// Writing NoRemote reclaims storage.
	d.Write(0, 0x1000, Entry{State: NoRemote})
	if d.Lookup(0x1000).State != NoRemote {
		t.Fatal("NoRemote write did not clear entry")
	}
}

func TestReadMissThenHit(t *testing.T) {
	d, cfg := newDir(t, nil)
	_, extra := d.Read(0, 0x1000)
	if extra != cfg.DirDRAMRead {
		t.Fatalf("first read extra = %d, want DRAM latency %d", extra, cfg.DirDRAMRead)
	}
	_, extra = d.Read(100, 0x1000)
	if extra != 0 {
		t.Fatalf("second read extra = %d, want 0 (cache hit)", extra)
	}
	if d.CacheHits() != 1 || d.CacheMisses() != 1 {
		t.Fatalf("hits=%d misses=%d", d.CacheHits(), d.CacheMisses())
	}
}

func TestReadContentionOnDRAM(t *testing.T) {
	d, cfg := newDir(t, nil)
	// Two misses at the same cycle: the second queues behind the first.
	_, e1 := d.Read(0, 0x1000)
	_, e2 := d.Read(0, 0x2000)
	if e1 != cfg.DirDRAMRead {
		t.Fatalf("first extra = %d", e1)
	}
	if e2 != 2*cfg.DirDRAMRead {
		t.Fatalf("second extra = %d, want %d (queued)", e2, 2*cfg.DirDRAMRead)
	}
}

func TestWriteKeepsCacheWarm(t *testing.T) {
	d, _ := newDir(t, nil)
	d.Write(0, 0x3000, Entry{State: SharedRemote, Sharers: Bitmap(0).Set(2)})
	_, extra := d.Read(10, 0x3000)
	if extra != 0 {
		t.Fatalf("read after write extra = %d, want 0 (write-allocate)", extra)
	}
}

func TestNoDirCacheAlwaysPaysDRAM(t *testing.T) {
	d, cfg := newDir(t, func(c *config.Config) { c.DirCacheEntries = 0 })
	_, e1 := d.Read(0, 0x1000)
	// Sequential reads at separated times both pay full latency.
	_, e2 := d.Read(1000, 0x1000)
	if e1 != cfg.DirDRAMRead || e2 != cfg.DirDRAMRead {
		t.Fatalf("extras %d %d, want DRAM latency both times", e1, e2)
	}
}

func TestDirCacheEviction(t *testing.T) {
	d, cfg := newDir(t, func(c *config.Config) { c.DirCacheEntries = 8 })
	// Fill well past capacity.
	for i := 0; i < 64; i++ {
		d.Read(sim.Time(i*100), uint64(i*cfg.LineSize))
	}
	if d.CacheMisses() != 64 {
		t.Fatalf("misses = %d, want 64 (distinct lines)", d.CacheMisses())
	}
	// The earliest line must have been evicted; re-reading it misses again.
	before := d.CacheMisses()
	d.Read(10000, 0)
	if d.CacheMisses() != before+1 {
		t.Fatal("expected eviction of the oldest entry")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{NoRemote: "NoRemote", SharedRemote: "SharedRemote", DirtyRemote: "DirtyRemote"} {
		if s.String() != want {
			t.Errorf("%v string = %q", uint8(s), s.String())
		}
	}
}
