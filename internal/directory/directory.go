// Package directory implements the full-bit-map coherence directory of a
// home node: the controller-side copy held in DRAM, the write-through
// directory cache that hides DRAM latency from the protocol engines, and
// the abbreviated bus-side copy (2-bit state per line) that the bus snoop
// consults at zero protocol-engine cost.
//
// The directory tracks which REMOTE nodes cache each LOCAL line. Caching by
// the home node's own processors is covered by bus snooping at the home and
// deliberately not recorded here, exactly as in the paper's design.
package directory

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"ccnuma/internal/cache"
	"ccnuma/internal/config"
	"ccnuma/internal/obs"
	"ccnuma/internal/sim"
)

// State is the stable directory state of a line.
type State uint8

const (
	// NoRemote: no remote node caches the line (the bus-side copy's
	// "uncached-remote" encoding).
	NoRemote State = iota
	// SharedRemote: one or more remote nodes hold clean copies.
	SharedRemote
	// DirtyRemote: exactly one remote node owns the line dirty.
	DirtyRemote
)

func (s State) String() string {
	switch s {
	case NoRemote:
		return "NoRemote"
	case SharedRemote:
		return "SharedRemote"
	case DirtyRemote:
		return "DirtyRemote"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Bitmap is a node-sharing vector (full bit map; supports up to 64 nodes).
type Bitmap uint64

// Set returns the bitmap with node added.
func (b Bitmap) Set(node int) Bitmap { return b | 1<<uint(node) }

// Clear returns the bitmap with node removed.
func (b Bitmap) Clear(node int) Bitmap { return b &^ (1 << uint(node)) }

// Has reports whether node is present.
func (b Bitmap) Has(node int) bool { return b&(1<<uint(node)) != 0 }

// Count returns the number of nodes present.
func (b Bitmap) Count() int { return bits.OnesCount64(uint64(b)) }

// ForEach calls fn for each set node in ascending order.
func (b Bitmap) ForEach(fn func(node int)) {
	for v := uint64(b); v != 0; {
		n := bits.TrailingZeros64(v)
		fn(n)
		v &^= 1 << uint(n)
	}
}

// Entry is one line's directory contents.
type Entry struct {
	State   State
	Sharers Bitmap // valid when State == SharedRemote
	Owner   int    // valid when State == DirtyRemote
}

// Directory is one home node's directory.
type Directory struct {
	cfg  *config.Config
	node int
	tr   *obs.Tracer // nil when tracing is disabled

	entries map[uint64]Entry
	// dirCache models the 8K-entry write-through directory cache. Only
	// presence/LRU matter; entry contents always come from entries.
	dirCache *cache.Cache
	// dram models contention on the controller-side directory DRAM.
	dram *sim.Resource

	hits, misses uint64
}

// New creates the directory for a home node. tr may be nil.
func New(eng *sim.Engine, cfg *config.Config, node int, tr *obs.Tracer) *Directory {
	d := &Directory{
		cfg:     cfg,
		node:    node,
		tr:      tr,
		entries: make(map[uint64]Entry),
		dram:    sim.NewResource(eng, fmt.Sprintf("dir-dram-%d", node)),
	}
	if cfg.DirCacheEntries > 0 {
		d.dirCache = cache.New(cfg.DirCacheEntries*cfg.LineSize, 4, cfg.LineSize)
	}
	return d
}

// Lookup returns the entry for line without any timing side effects. This
// is the bus-side abbreviated copy: the directory access controller keeps
// it consistent, so the bus snoop reads it for free.
func (d *Directory) Lookup(line uint64) Entry {
	return d.entries[line] // zero value = NoRemote
}

// Read returns the entry and the extra latency beyond a directory-cache
// hit: zero on a hit, the (possibly queued) DRAM read latency on a miss.
// The protocol engine stalls for the extra time; the sub-operation cost of
// the cache access itself is charged separately by the handler.
func (d *Directory) Read(now sim.Time, line uint64) (Entry, sim.Time) {
	e := d.entries[line]
	if d.dirCache == nil {
		d.tr.DirAccess(now, d.node, line, false, false, e.State.String())
		start := d.dram.AcquireAt(now, d.cfg.DirDRAMRead, nil)
		return e, start - now + d.cfg.DirDRAMRead
	}
	if d.dirCache.Touch(line) != cache.Invalid {
		d.hits++
		d.tr.DirAccess(now, d.node, line, false, true, e.State.String())
		return e, 0
	}
	d.misses++
	d.tr.DirAccess(now, d.node, line, false, false, e.State.String())
	start := d.dram.AcquireAt(now, d.cfg.DirDRAMRead, nil)
	d.dirCache.Insert(line, cache.Shared)
	return e, start - now + d.cfg.DirDRAMRead
}

// Write updates the entry write-through: the in-memory state changes
// immediately, the cached copy stays valid, and the DRAM write is queued in
// the background without stalling the engine (the paper postpones directory
// updates until after responses are issued).
func (d *Directory) Write(now sim.Time, line uint64, e Entry) {
	d.tr.DirAccess(now, d.node, line, true, false, e.State.String())
	if e.State == NoRemote {
		delete(d.entries, line)
	} else {
		d.entries[line] = e
	}
	if d.dirCache != nil {
		d.dirCache.Insert(line, cache.Shared)
	}
	d.dram.AcquireAt(now, d.cfg.DirDRAMWrite, nil)
}

// ForEachEntry visits every non-NoRemote entry in ascending line order
// (deterministic regardless of map iteration order).
func (d *Directory) ForEachEntry(fn func(line uint64, e Entry)) {
	lines := make([]uint64, 0, len(d.entries))
	for line := range d.entries {
		lines = append(lines, line)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, line := range lines {
		fn(line, d.entries[line])
	}
}

// StateSnapshot renders the directory's stable state as a deterministic
// string (sorted by line) for the ccverify model checker's abstract state
// hash. Directory-cache presence and DRAM timing are deliberately excluded:
// they affect latency, never protocol behaviour.
func (d *Directory) StateSnapshot() string {
	var b strings.Builder
	d.ForEachEntry(func(line uint64, e Entry) {
		switch e.State {
		case NoRemote:
		case SharedRemote:
			fmt.Fprintf(&b, "%#x:S%x;", line, uint64(e.Sharers))
		case DirtyRemote:
			fmt.Fprintf(&b, "%#x:D%d;", line, e.Owner)
		default:
			panic(fmt.Sprintf("directory: unknown state %v for line %#x", e.State, line))
		}
	})
	return b.String()
}

// CacheHits returns directory-cache hits observed by Read.
func (d *Directory) CacheHits() uint64 { return d.hits }

// CacheMisses returns directory-cache misses observed by Read.
func (d *Directory) CacheMisses() uint64 { return d.misses }

// DRAM exposes the directory DRAM resource for utilization reports.
func (d *Directory) DRAM() *sim.Resource { return d.dram }
