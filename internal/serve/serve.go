// Package serve is the crash-safe experiment service behind ccserved: an
// HTTP API that accepts ccnuma-scenario/v1 documents (single runs or
// sweeps), executes them on the shared worker pool, and memoizes every
// cell artifact in a content-addressed store keyed by the cell's scenario
// fingerprint. Resubmitting any experiment — byte-identical or merely
// semantically identical after normalization — is served from the store
// without recomputation.
//
// Durability is the point. Sweep acceptance is journaled in the store's
// write-ahead log before any cell runs, and each finished cell is
// published with the store's atomic rename protocol, so a SIGKILL at any
// instant loses at most the cells that were mid-simulation: on restart
// the journal names the unfinished sweeps, the server resumes them, and
// completed cells are store hits — never recomputed, never torn. The
// kill-torture test in this package exercises exactly that loop.
//
// Admission is bounded: cells beyond the configured queue depth are
// rejected with 429 and a Retry-After hint rather than queued without
// limit, and /readyz flips to 503 under saturation or drain so a load
// balancer can route elsewhere. Cell panics (including the protocol's
// deliberate fail-stop) are captured, classified via
// machine.ClassifyFailure, and surfaced as machine-readable failure
// documents; transient classes are retried with bounded backoff,
// pathological ones are not.
package serve

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"ccnuma/internal/obs"
	"ccnuma/internal/runner"
	"ccnuma/internal/scenario"
	"ccnuma/internal/store"
)

// Config carries every serving knob. The zero value is not runnable; use
// DefaultConfig and override.
type Config struct {
	// Addr is the listen address ("127.0.0.1:0" picks a free port).
	Addr string
	// StoreDir is the content-addressed store root.
	StoreDir string
	// Jobs bounds concurrently executing cells per submission.
	Jobs int
	// QueueDepth bounds cells admitted across all submissions; beyond it,
	// submissions are rejected with 429 + Retry-After.
	QueueDepth int
	// CellRetries is how many times a transiently failing cell is retried
	// (pathological failures — e.g. retry-budget exhaustion, which is
	// deterministic for a given scenario — are never retried).
	CellRetries int
	// RetryBackoff is the initial backoff between cell retries; it doubles
	// per attempt.
	RetryBackoff time.Duration
	// DrainTimeout bounds graceful shutdown: how long in-flight requests
	// and cells get to finish before the listener is torn down hard.
	DrainTimeout time.Duration
	// SampleEvery, when > 0, attaches an obs sampler with that simulated-
	// cycle interval to every computed cell; the latest rows are exposed
	// on /statusz.
	SampleEvery int64
	// ComputeLog, when non-empty, is a file that receives one fingerprint
	// line per cell actually computed (not served from the store). The
	// kill-torture harness asserts no fingerprint ever appears twice.
	ComputeLog string
	// Out receives log lines (defaults to os.Stderr).
	Out io.Writer
}

// DefaultConfig returns the serving defaults.
func DefaultConfig() Config {
	return Config{
		Addr:         "127.0.0.1:8347",
		StoreDir:     "ccserved-store",
		Jobs:         4,
		QueueDepth:   64,
		CellRetries:  2,
		RetryBackoff: 50 * time.Millisecond,
		DrainTimeout: 30 * time.Second,
	}
}

// Counters are the monotonically increasing serve-side counts exposed on
// /statusz. All fields are guarded by Server.mu.
type Counters struct {
	Submissions   uint64 `json:"submissions"`
	CellsHit      uint64 `json:"cellsHit"`
	CellsComputed uint64 `json:"cellsComputed"`
	CellsFailed   uint64 `json:"cellsFailed"`
	CellRetries   uint64 `json:"cellRetries"`
	Rejected      uint64 `json:"rejected"`
	SweepsResumed uint64 `json:"sweepsResumed"`
}

// flight is one in-progress cell computation; duplicate submissions of
// the same fingerprint join it instead of computing again (singleflight).
type flight struct {
	done    chan struct{}
	fail    *obs.FailureDoc
	retries int
}

// Server is the experiment service. Create with New, start with Start or
// Run, stop with Shutdown.
type Server struct {
	cfg   Config
	store *store.Store
	// Recovery is the store's startup report, frozen at New and exposed
	// on /statusz so operators can see what the last crash cost.
	Recovery *store.Recovery

	httpSrv *http.Server
	ln      net.Listener

	// baseCtx gates starting new cells; Shutdown cancels it after the
	// drain timeout so a stuck queue cannot hold the process hostage.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	usage     *runner.Usage
	stopUsage func()

	mu       sync.Mutex
	flights  map[string]*flight
	queued   int // admission charge: cells admitted but not yet finished
	draining bool
	counters Counters
	samples  []obs.Sample // latest sampled rows across computed cells

	computeMu  sync.Mutex
	computeLog *os.File

	wg sync.WaitGroup // background sweep resumption
}

// New opens (and recovers) the store and prepares a server. No listener
// is created yet and no pending sweep is resumed — Start does both.
func New(cfg Config) (*Server, error) {
	if cfg.Out == nil {
		cfg.Out = os.Stderr
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1
	}
	st, rec, err := store.Open(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	var logF *os.File
	if cfg.ComputeLog != "" {
		logF, err = os.OpenFile(cfg.ComputeLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
		if err != nil {
			st.Close()
			return nil, fmt.Errorf("serve: compute log: %w", err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		store:      st,
		Recovery:   rec,
		baseCtx:    ctx,
		baseCancel: cancel,
		usage:      &runner.Usage{},
		flights:    make(map[string]*flight),
		computeLog: logF,
	}
	s.httpSrv = &http.Server{Handler: s.routes()}
	return s, nil
}

// Start binds the listener, begins resuming any journaled pending sweeps
// in the background, and serves HTTP until Shutdown (or a fatal listener
// error). It returns once the listener is bound; serving continues on a
// background goroutine whose terminal error is delivered on the returned
// channel.
func (s *Server) Start() (<-chan error, error) {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s.ln = ln
	s.stopUsage = runner.Observe(s.usage)
	s.logf("ccserved listening on %s (store %s: %d objects, %d pending sweeps)",
		ln.Addr(), s.cfg.StoreDir, s.Recovery.Objects, len(s.Recovery.PendingSweeps))

	s.wg.Add(1)
	go s.resumePending()

	errc := make(chan error, 1)
	go func() {
		err := s.httpSrv.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		errc <- err
	}()
	return errc, nil
}

// Addr reports the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// resumePending re-executes every sweep the journal reported as accepted
// but unfinished. Cells completed before the crash are store hits, so a
// resumed sweep computes only what the crash actually lost.
func (s *Server) resumePending() {
	defer s.wg.Done()
	for _, p := range s.Recovery.PendingSweeps {
		spec, err := scenario.LoadBytes(p.Spec)
		if err != nil {
			s.logf("resume %s: journaled spec unreadable: %v", p.Fp, err)
			continue
		}
		cells, err := ExpandCells(spec)
		if err != nil {
			s.logf("resume %s: %v", p.Fp, err)
			continue
		}
		s.mu.Lock()
		s.counters.SweepsResumed++
		s.mu.Unlock()
		s.logf("resuming sweep %s (%d cells)", p.Fp, len(cells))
		res, err := s.runCells(p.Fp, cells, true)
		if err != nil {
			s.logf("resume %s: interrupted again: %v", p.Fp, err)
			continue
		}
		failed := 0
		for _, r := range res {
			if r.Status == StatusError {
				failed++
			}
		}
		// A cleanly completed resume retires the journal record; a resume
		// with failures stays pending so the next restart tries again.
		if failed == 0 {
			if err := s.store.EndSweep(p.Fp); err != nil {
				s.logf("resume %s: retiring journal record: %v", p.Fp, err)
			}
		}
		s.logf("resumed sweep %s: %d cells, %d failed", p.Fp, len(res), failed)
	}
}

// Shutdown drains gracefully: flip readiness, let in-flight requests and
// cells finish within DrainTimeout, then cancel the base context, wait
// for background work, checkpoint and close the store. The store close
// is unconditional — even a botched drain leaves a consistent journal.
func (s *Server) Shutdown() error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := s.httpSrv.Shutdown(ctx)
	// Give background sweep resumption the remainder of the drain window
	// before cancelling: an interrupted resume stays journaled and costs a
	// restart, a completed one retires its record now.
	bg := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(bg)
	}()
	select {
	case <-bg:
	case <-ctx.Done():
	}
	s.baseCancel() // stop starting new cells; in-flight ones finish
	s.wg.Wait()
	if s.stopUsage != nil {
		s.stopUsage()
	}
	s.computeMu.Lock()
	if s.computeLog != nil {
		s.computeLog.Close()
	}
	s.computeMu.Unlock()
	if cerr := s.store.Close(); err == nil {
		err = cerr
	}
	s.logf("ccserved drained and checkpointed")
	return err
}

// Run is the blocking entry point used by cmd/ccserved: start, serve
// until SIGINT/SIGTERM or listener failure, then drain.
func Run(cfg Config) error {
	s, err := New(cfg)
	if err != nil {
		return err
	}
	errc, err := s.Start()
	if err != nil {
		s.store.Close()
		return err
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	select {
	case sig := <-sigc:
		s.logf("received %v, draining", sig)
	case err := <-errc:
		if err != nil {
			s.Shutdown()
			return err
		}
	}
	return s.Shutdown()
}

func (s *Server) logf(format string, args ...interface{}) {
	fmt.Fprintf(s.cfg.Out, "ccserved: "+format+"\n", args...)
}

// appendComputeLog records that a cell was actually computed (not served
// from the store). The write is flushed before Put's journal done record
// could matter: the log is an audit trail, so a crash may lose the line
// for a computed cell but can never invent one.
func (s *Server) appendComputeLog(fp string) {
	s.computeMu.Lock()
	defer s.computeMu.Unlock()
	if s.computeLog == nil {
		return
	}
	fmt.Fprintf(s.computeLog, "%s\n", fp)
	s.computeLog.Sync()
}
