package serve

// The kill-torture harness: a real ccserved process (this test binary
// re-executed with CCSERVED_HELPER=1) is SIGKILLed mid-sweep, restarted,
// and killed again, for at least 25 seeded cycles, until the sweep
// completes. After every restart and at the end it asserts the crash-
// safety contract:
//
//   - never corrupt: recovery quarantines nothing after a pure kill;
//   - never recompute: each cell fingerprint appears at most once in the
//     compute log across ALL process generations, and a final submit of
//     the full sweep is 100% store hits;
//   - byte-identical: every artifact that survived the torture equals,
//     byte for byte, the artifact an uninterrupted server produces.
//
// SIGKILL cannot be trapped, so every on-disk state the torture reaches
// is one the store's recovery pass genuinely has to handle.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"ccnuma/internal/scenario"
)

func TestMain(m *testing.M) {
	if os.Getenv("CCSERVED_HELPER") == "1" {
		helperMain()
		return
	}
	os.Exit(m.Run())
}

// helperMain is the ccserved process under torture: start serving on an
// ephemeral port, publish the address atomically, and run until killed.
func helperMain() {
	cfg := DefaultConfig()
	cfg.Addr = "127.0.0.1:0"
	cfg.StoreDir = os.Getenv("CCSERVED_STORE")
	cfg.ComputeLog = os.Getenv("CCSERVED_COMPUTELOG")
	cfg.Jobs = 2
	cfg.QueueDepth = 256
	cfg.CellRetries = 0
	cfg.Out = io.Discard
	s, err := New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	if _, err := s.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	addrFile := os.Getenv("CCSERVED_ADDRFILE")
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(s.Addr()), 0o666); err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	select {} // live until SIGKILL
}

// tortureSweep is sized so that dozens of kill cycles each catch the
// server mid-progress: 40 cells at a few ms each.
const tortureSweep = `{
 "schema": "ccnuma-scenario/v1",
 "name": "kill-torture",
 "machine": {"nodes": 2, "procsPerNode": 2},
 "workload": {"app": "fft", "size": "test"},
 "sweep": {
  "param": "netlat",
  "values": [2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30, 32, 34, 36, 38, 40],
  "archs": ["2HWC", "2PPC"]
 }
}`

// minTortureKills can be raised via CCSERVED_TORTURE_KILLS (the
// torture-smoke make target uses the default).
const minTortureKills = 25

type helper struct {
	cmd    *exec.Cmd
	addr   string
	stderr bytes.Buffer
}

func startHelper(t *testing.T, dir string, round int) *helper {
	t.Helper()
	addrFile := filepath.Join(dir, fmt.Sprintf("addr-%d", round))
	h := &helper{cmd: exec.Command(os.Args[0])}
	h.cmd.Env = append(os.Environ(),
		"CCSERVED_HELPER=1",
		"CCSERVED_STORE="+filepath.Join(dir, "store"),
		"CCSERVED_COMPUTELOG="+filepath.Join(dir, "compute.log"),
		"CCSERVED_ADDRFILE="+addrFile,
	)
	h.cmd.Stderr = &h.stderr
	if err := h.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil {
			h.addr = string(data)
			return h
		}
		if h.cmd.ProcessState != nil || time.Now().After(deadline) {
			t.Fatalf("round %d: helper never published an address\nstderr: %s", round, h.stderr.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// kill SIGKILLs the helper and reaps it — the crash the store must absorb.
func (h *helper) kill() {
	syscall.Kill(h.cmd.Process.Pid, syscall.SIGKILL)
	h.cmd.Wait()
}

func (h *helper) statusz(t *testing.T) statusDoc {
	t.Helper()
	resp, err := http.Get("http://" + h.addr + "/statusz")
	if err != nil {
		t.Fatalf("statusz: %v\nstderr: %s", err, h.stderr.String())
	}
	defer resp.Body.Close()
	var doc statusDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// submitAsync fires the sweep at the helper without waiting: the response
// usually dies with the process. Submitting every round also covers the
// case where an early kill beat the sweep's journal acceptance.
func (h *helper) submitAsync() {
	addr := h.addr
	go func() {
		client := &http.Client{Timeout: 10 * time.Second}
		resp, err := client.Post("http://"+addr+"/v1/submit", "application/json",
			strings.NewReader(tortureSweep))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
}

// expectedArtifacts computes the uninterrupted baseline in-process: every
// cell's byte-exact artifact from a fresh server over a fresh store. It
// also reports the measured wall time per cell, which calibrates the kill
// schedule to the build (race-instrumented binaries are ~10x slower).
func expectedArtifacts(t *testing.T) (map[string][]byte, time.Duration) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.StoreDir = filepath.Join(t.TempDir(), "baseline-store")
	cfg.Jobs = 2 // match the helper so per-cell wall time transfers
	cfg.Out = io.Discard
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	spec, err := scenario.LoadBytes([]byte(tortureSweep))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	perCell := time.Since(start) / time.Duration(len(resp.Cells))
	if perCell < time.Millisecond {
		perCell = time.Millisecond
	}
	want := make(map[string][]byte, len(resp.Cells))
	for _, c := range resp.Cells {
		if c.Status != StatusComputed {
			t.Fatalf("baseline cell %+v not computed", c)
		}
		payload, ok, err := s.store.Get(c.Fp)
		if err != nil || !ok {
			t.Fatalf("baseline artifact %s: ok=%v err=%v", c.Fp, ok, err)
		}
		want[c.Fp] = payload
	}
	return want, perCell
}

func TestKillTorture(t *testing.T) {
	if testing.Short() {
		t.Skip("kill torture skipped in -short mode")
	}
	minKills := minTortureKills
	if v := os.Getenv("CCSERVED_TORTURE_KILLS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("CCSERVED_TORTURE_KILLS=%q: %v", v, err)
		}
		minKills = n
	}

	want, perCell := expectedArtifacts(t)
	dir := t.TempDir()
	objectsDir := filepath.Join(dir, "store", "objects")
	countPresent := func() int {
		n := 0
		for fp := range want {
			if _, err := os.Stat(filepath.Join(objectsDir, fp+".obj")); err == nil {
				n++
			}
		}
		return n
	}

	// Seeded: the kill schedule is reproducible for a given seed and
	// build. The delay window scales with measured per-cell time so most
	// rounds die mid-sweep with a couple of cells landed; stalled rounds
	// (kill too early for this machine's process-startup cost) widen the
	// window until progress resumes.
	rng := rand.New(rand.NewSource(1))
	kills, scale, stalled := 0, 1.0, 0
	for round := 0; kills < minKills || countPresent() < len(want); round++ {
		if round > minKills*8 {
			t.Fatalf("torture not converging: %d kills, %d/%d cells after %d rounds",
				kills, countPresent(), len(want), round)
		}
		before := countPresent()
		h := startHelper(t, dir, round)
		// Recovery after a pure kill must never quarantine: quarantine
		// would mean the atomic-write protocol published torn bytes.
		doc := h.statusz(t)
		if doc.Recovery.Quarantined != 0 {
			h.kill()
			t.Fatalf("round %d: recovery quarantined %d objects after SIGKILL", round, doc.Recovery.Quarantined)
		}
		h.submitAsync()
		delay := time.Duration(scale * (0.5 + 3*rng.Float64()) * float64(perCell))
		if max := 2 * time.Second; delay > max {
			delay = max
		}
		time.Sleep(delay)
		h.kill()
		kills++
		if countPresent() == before && before < len(want) {
			if stalled++; stalled >= 3 {
				scale, stalled = scale*1.5, 0
			}
		} else {
			stalled = 0
			if scale > 1 {
				scale *= 0.8
			}
		}
	}
	t.Logf("torture: %d kills until sweep complete (per-cell %v)", kills, perCell)

	// Final generation: everything must now be served from the store.
	h := startHelper(t, dir, -1)
	defer h.kill()
	doc := h.statusz(t)
	if doc.Recovery.Quarantined != 0 {
		t.Fatalf("final recovery quarantined %d objects", doc.Recovery.Quarantined)
	}
	resp, err := http.Post("http://"+h.addr+"/v1/submit", "application/json",
		strings.NewReader(tortureSweep))
	if err != nil {
		t.Fatal(err)
	}
	var sr SubmitResponse
	err = json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Cells) != len(want) {
		t.Fatalf("final submit returned %d cells, want %d", len(sr.Cells), len(want))
	}
	for _, c := range sr.Cells {
		if c.Status != StatusHit {
			t.Errorf("cell %s status %q after torture, want hit (recompute!)", c.Fp, c.Status)
		}
	}

	// Byte-identical: every tortured artifact equals the uninterrupted one.
	for fp, expect := range want {
		ar, err := http.Get("http://" + h.addr + "/v1/artifact/" + fp)
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(ar.Body)
		ar.Body.Close()
		if err != nil || ar.StatusCode != http.StatusOK {
			t.Fatalf("artifact %s: %s err=%v", fp, ar.Status, err)
		}
		if !bytes.Equal(got, expect) {
			t.Errorf("artifact %s differs from uninterrupted baseline (%d vs %d bytes)", fp, len(got), len(expect))
		}
	}

	// Zero recompute, audited: across every process generation, no cell
	// fingerprint was computed twice. (A fingerprint may appear zero times
	// — killed between publish and audit append — but never twice.)
	logData, err := os.ReadFile(filepath.Join(dir, "compute.log"))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, line := range strings.Split(string(logData), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if _, known := want[line]; !known {
			// A torn final line from a kill mid-append is legal; a complete
			// line naming an unknown fingerprint is not.
			if len(line) == 16 {
				t.Errorf("compute log names unknown fingerprint %q", line)
			}
			continue
		}
		counts[line]++
	}
	for fp, n := range counts {
		if n > 1 {
			t.Errorf("cell %s computed %d times (must be at most once)", fp, n)
		}
	}
	t.Logf("torture: %d/%d cells computed exactly once, rest pre-kill losses recovered as hits",
		len(counts), len(want))
}
