package serve

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"ccnuma/internal/obs"
	"ccnuma/internal/runner"
	"ccnuma/internal/scenario"
	"ccnuma/internal/sim"
)

// Cell statuses in a ccnuma-serve/v1 response.
const (
	// StatusHit: the artifact was already in the store.
	StatusHit = "hit"
	// StatusComputed: this request (or a concurrent one it joined) ran the
	// simulation and published the artifact.
	StatusComputed = "computed"
	// StatusError: the cell failed; Failure carries the classified cause.
	StatusError = "error"
)

// ResponseSchema identifies the submit response document.
const ResponseSchema = "ccnuma-serve/v1"

// CellResult is one cell's outcome in a submit response.
type CellResult struct {
	Fp     string `json:"fingerprint"`
	Arch   string `json:"arch,omitempty"`
	Value  int    `json:"value,omitempty"`
	Status string `json:"status"`
	// ExecCycles is probed from the artifact for hit/computed cells so a
	// sweep client gets its headline numbers without refetching every
	// artifact.
	ExecCycles int64 `json:"execCycles,omitempty"`
	// Retries counts how many failed attempts preceded the outcome.
	Retries int             `json:"retries,omitempty"`
	Failure *obs.FailureDoc `json:"failure,omitempty"`
}

// SubmitResponse is the ccnuma-serve/v1 document.
type SubmitResponse struct {
	Schema      string       `json:"schema"`
	Fingerprint string       `json:"fingerprint"` // the submission's own fingerprint
	Cells       []CellResult `json:"cells"`
}

// errRejected signals admission-control rejection (429 upstream).
var errRejected = errors.New("serve: admission queue full")

// errDraining signals the server is shutting down (503 upstream).
var errDraining = errors.New("serve: draining")

// Submit executes a parsed scenario and reports per-cell outcomes. Sweep
// submissions are journaled in the store before any cell runs, so a crash
// mid-sweep is resumed on restart; single runs need no sweep record (the
// store's per-object journal already covers them). Submit blocks until
// every cell is hit, computed, or failed.
func (s *Server) Submit(spec *scenario.Spec) (*SubmitResponse, error) {
	cells, err := ExpandCells(spec)
	if err != nil {
		return nil, err
	}
	fp, err := spec.Fingerprint()
	if err != nil {
		return nil, err
	}

	if err := s.admit(cells); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.counters.Submissions++
	s.mu.Unlock()

	sweep := spec.Sweep != nil
	if sweep {
		canon, err := spec.Canonical()
		if err != nil {
			s.release(cells)
			return nil, err
		}
		if err := s.store.BeginSweep(fp, canon); err != nil {
			s.release(cells)
			return nil, err
		}
	}

	results, err := s.runCells(fp, cells, false)
	if err != nil {
		// Interrupted by shutdown: leave the sweep journaled as pending so
		// the next process resumes it.
		return nil, err
	}
	if sweep {
		clean := true
		for _, r := range results {
			if r.Status == StatusError {
				clean = false
				break
			}
		}
		// A sweep with failed cells stays pending: failures may be
		// transient across restarts (and pathological ones recompute
		// cheaply enough to re-classify).
		if clean {
			if err := s.store.EndSweep(fp); err != nil {
				return nil, err
			}
		}
	}
	return &SubmitResponse{Schema: ResponseSchema, Fingerprint: fp, Cells: results}, nil
}

// admit charges the submission's not-yet-stored cells against the
// admission queue, rejecting the whole submission if it would overflow.
// Already-stored cells are free: serving a hit is O(read).
func (s *Server) admit(cells []*Cell) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return errDraining
	}
	charge := 0
	for _, c := range cells {
		if !s.store.Has(c.Fp) {
			charge++
		}
	}
	if s.queued+charge > s.cfg.QueueDepth {
		s.counters.Rejected++
		return fmt.Errorf("%w: %d queued + %d new > depth %d",
			errRejected, s.queued, charge, s.cfg.QueueDepth)
	}
	s.queued += charge
	for _, c := range cells {
		if !s.store.Has(c.Fp) {
			c.charged = true
		}
	}
	return nil
}

// release undoes an admission charge for cells that will not run after
// all (submission failed between admit and runCells).
func (s *Server) release(cells []*Cell) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range cells {
		if c.charged {
			c.charged = false
			s.queued--
		}
	}
}

// retryAfter estimates seconds until queue capacity frees up: one batch
// of Jobs cells is the unit of progress.
func (s *Server) retryAfter() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	batches := (s.queued + s.cfg.Jobs - 1) / s.cfg.Jobs
	if batches < 1 {
		batches = 1
	}
	return batches
}

// runCells executes every cell of one submission on the worker pool,
// serving store hits and deduplicating concurrent identical cells via
// singleflight. resume marks journal-replayed sweeps, which bypass
// admission (their charge was paid before the crash; rejecting a resume
// would strand the journal record forever).
func (s *Server) runCells(submitFp string, cells []*Cell, resume bool) ([]CellResult, error) {
	results, completed, err := runner.MapPartial(s.baseCtx, s.cfg.Jobs, len(cells),
		func(i int) (CellResult, error) {
			return s.runCell(cells[i]), nil
		}, nil)
	if err != nil {
		done := 0
		for _, c := range completed {
			if c {
				done++
			}
		}
		s.release(cells)
		kind := "submission"
		if resume {
			kind = "resumed sweep"
		}
		s.logf("%s %s interrupted: %d/%d cells done (journal will resume the rest)",
			kind, submitFp, done, len(cells))
		return nil, err
	}
	return results, nil
}

// runCell produces one cell's outcome: store hit, join of an identical
// in-flight computation, or a fresh computation with bounded retries.
func (s *Server) runCell(c *Cell) CellResult {
	res := CellResult{Fp: c.Fp, Arch: c.Arch}
	if c.HasValue {
		res.Value = c.Value
	}
	defer func() {
		if c.charged {
			s.mu.Lock()
			c.charged = false
			s.queued--
			s.mu.Unlock()
		}
	}()

	for {
		// Fast path: stored. Covers both pre-existing artifacts and flights
		// that completed while we waited.
		if payload, ok, err := s.store.Get(c.Fp); err == nil && ok {
			s.mu.Lock()
			s.counters.CellsHit++
			s.mu.Unlock()
			res.Status = StatusHit
			res.ExecCycles = probeExecCycles(payload)
			return res
		}

		s.mu.Lock()
		if f, ok := s.flights[c.Fp]; ok {
			s.mu.Unlock()
			select {
			case <-f.done:
				if f.fail != nil {
					res.Status, res.Failure, res.Retries = StatusError, f.fail, f.retries
					return res
				}
				continue // stored now; loop serves the hit
			case <-s.baseCtx.Done():
				res.Status = StatusError
				res.Failure = &obs.FailureDoc{Class: obs.FailureError, Message: "interrupted by shutdown"}
				return res
			}
		}
		f := &flight{done: make(chan struct{})}
		s.flights[c.Fp] = f
		s.mu.Unlock()

		payload, fail, retries := s.computeWithRetries(c)
		f.fail, f.retries = fail, retries
		if fail == nil {
			if err := s.store.Put(c.Fp, payload); err != nil {
				f.fail = &obs.FailureDoc{Class: obs.FailureError, Message: err.Error()}
			} else {
				s.appendComputeLog(c.Fp)
			}
		}
		s.mu.Lock()
		delete(s.flights, c.Fp)
		if f.fail == nil {
			s.counters.CellsComputed++
		} else {
			s.counters.CellsFailed++
		}
		s.counters.CellRetries += uint64(retries)
		s.mu.Unlock()
		close(f.done)

		if f.fail != nil {
			res.Status, res.Failure, res.Retries = StatusError, f.fail, retries
			return res
		}
		res.Status, res.Retries = StatusComputed, retries
		res.ExecCycles = probeExecCycles(payload)
		return res
	}
}

// computeWithRetries runs the simulation, retrying transient failures
// with doubling backoff. Pathological failures (deterministic for the
// scenario, e.g. retry-budget exhaustion) are returned immediately —
// re-running an identical deterministic simulation cannot help.
func (s *Server) computeWithRetries(c *Cell) (payload []byte, fail *obs.FailureDoc, retries int) {
	backoff := s.cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		var sampler *obs.Sampler
		if s.cfg.SampleEvery > 0 {
			sampler = obs.NewSampler(sim.Time(s.cfg.SampleEvery))
		}
		payload, fail = computeCell(c, sampler)
		if fail == nil {
			s.keepSamples(sampler)
			return payload, nil, attempt
		}
		if fail.Pathological() || attempt >= s.cfg.CellRetries {
			return nil, fail, attempt
		}
		s.logf("cell %s attempt %d failed [%s]: %s — retrying in %v",
			c.Fp, attempt+1, fail.Class, fail.Message, backoff)
		select {
		case <-time.After(backoff):
		case <-s.baseCtx.Done():
			return nil, fail, attempt
		}
		backoff *= 2
	}
}

// keepSamples retains the tail of the latest computed cell's sample rows
// for /statusz.
func (s *Server) keepSamples(sampler *obs.Sampler) {
	if sampler == nil {
		return
	}
	rows := sampler.Samples()
	const keep = 64
	if len(rows) > keep {
		rows = rows[len(rows)-keep:]
	}
	s.mu.Lock()
	s.samples = append(s.samples[:0], rows...)
	s.mu.Unlock()
}

// Keys lists the store's fingerprints (diagnostics).
func (s *Server) Keys() []string {
	keys := s.store.Keys()
	sort.Strings(keys)
	return keys
}
