package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"ccnuma/internal/scenario"
	"ccnuma/internal/store"
)

const singleDoc = `{
 "schema": "ccnuma-scenario/v1",
 "name": "serve-single",
 "machine": {"nodes": 2, "procsPerNode": 2},
 "workload": {"app": "fft", "size": "test"}
}`

const sweepDoc = `{
 "schema": "ccnuma-scenario/v1",
 "name": "serve-sweep",
 "machine": {"nodes": 2, "procsPerNode": 2},
 "workload": {"app": "fft", "size": "test"},
 "sweep": {"param": "netlat", "values": [14, 50], "archs": ["2HWC", "2PPC"]}
}`

func testConfig(t *testing.T) Config {
	t.Helper()
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.Addr = "127.0.0.1:0"
	cfg.StoreDir = filepath.Join(dir, "store")
	cfg.ComputeLog = filepath.Join(dir, "compute.log")
	cfg.Jobs = 2
	cfg.QueueDepth = 16
	cfg.CellRetries = 1
	cfg.RetryBackoff = time.Millisecond
	cfg.DrainTimeout = 5 * time.Second
	cfg.Out = io.Discard
	return cfg
}

func mustSpec(t *testing.T, doc string) *scenario.Spec {
	t.Helper()
	spec, err := scenario.LoadBytes([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func computeLogLines(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return strings.Fields(string(data))
}

func TestSubmitMemoizes(t *testing.T) {
	cfg := testConfig(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()

	resp, err := s.Submit(mustSpec(t, singleDoc))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Cells) != 1 || resp.Cells[0].Status != StatusComputed {
		t.Fatalf("first submit: %+v", resp.Cells)
	}
	if resp.Cells[0].ExecCycles <= 0 {
		t.Fatalf("computed cell has no exec cycles: %+v", resp.Cells[0])
	}
	first := resp.Cells[0]

	// Same experiment under a different name: the normalized cell must
	// content-address identically and be served from the store.
	renamed := strings.Replace(singleDoc, "serve-single", "other-name", 1)
	resp2, err := s.Submit(mustSpec(t, renamed))
	if err != nil {
		t.Fatal(err)
	}
	got := resp2.Cells[0]
	if got.Status != StatusHit || got.Fp != first.Fp || got.ExecCycles != first.ExecCycles {
		t.Fatalf("renamed resubmit not a hit: %+v vs %+v", got, first)
	}

	if lines := computeLogLines(t, cfg.ComputeLog); len(lines) != 1 || lines[0] != first.Fp {
		t.Fatalf("compute log = %v, want exactly one line %s", lines, first.Fp)
	}
}

func TestSweepCellsAndJournalRetired(t *testing.T) {
	cfg := testConfig(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.Submit(mustSpec(t, sweepDoc))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Cells) != 4 {
		t.Fatalf("sweep expanded to %d cells, want 4", len(resp.Cells))
	}
	seen := map[string]bool{}
	for _, c := range resp.Cells {
		if c.Status != StatusComputed {
			t.Fatalf("cell %+v not computed", c)
		}
		if seen[c.Fp] {
			t.Fatalf("duplicate cell fingerprint %s", c.Fp)
		}
		seen[c.Fp] = true
	}

	// A single-run submission of one grid point is a hit on the sweep's cell.
	cells, err := ExpandCells(mustSpec(t, sweepDoc))
	if err != nil {
		t.Fatal(err)
	}
	single := &scenario.Spec{
		SchemaName: scenario.Schema,
		Machine:    cells[0].Spec.Machine,
		Workload:   cells[0].Spec.Workload,
	}
	resp2, err := s.Submit(single)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Cells[0].Status != StatusHit || resp2.Cells[0].Fp != cells[0].Fp {
		t.Fatalf("grid-point submit: %+v, want hit on %s", resp2.Cells[0], cells[0].Fp)
	}

	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	// The cleanly finished sweep must not be journaled as pending.
	st, rec, err := store.Open(cfg.StoreDir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if len(rec.PendingSweeps) != 0 {
		t.Fatalf("finished sweep still pending: %+v", rec.PendingSweeps)
	}
	if rec.Objects != 4 || rec.Quarantined != 0 {
		t.Fatalf("store after drain: %+v", rec)
	}
}

func TestResumePendingSweepOnStartup(t *testing.T) {
	cfg := testConfig(t)
	spec := mustSpec(t, sweepDoc)
	fp, err := spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	canon, err := spec.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	// Journal an accepted-but-unserved sweep, as a crash after acceptance
	// would leave it.
	st, _, err := store.Open(cfg.StoreDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.BeginSweep(fp, canon); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Recovery.PendingSweeps) != 1 {
		t.Fatalf("pending sweeps at startup: %+v", s.Recovery.PendingSweeps)
	}
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(); err != nil { // waits for the background resume
		t.Fatal(err)
	}

	st2, rec, err := store.Open(cfg.StoreDir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rec.Objects != 4 || len(rec.PendingSweeps) != 0 {
		t.Fatalf("after resume: %+v", rec)
	}
}

func TestFailingCellClassifiedAndRetried(t *testing.T) {
	cfg := testConfig(t)
	cfg.CellRetries = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	// Canonical() validates documents, so a runtime cell failure needs a
	// cell built by hand: a size class the workload layer rejects. The cell
	// must fail cleanly — classified, retried, never crashing the server.
	bad := &Cell{
		Spec: &scenario.Spec{
			SchemaName: scenario.Schema,
			Machine:    mustSpec(t, singleDoc).Machine,
			Workload:   scenario.Workload{App: "fft", Size: "bogus"},
		},
		Fp:    "00000000deadbeef",
		Canon: []byte("{}"),
	}
	c := s.runCell(bad)
	if c.Status != StatusError || c.Failure == nil {
		t.Fatalf("bad cell: %+v", c)
	}
	if c.Failure.Class == "" || c.Failure.Message == "" {
		t.Fatalf("failure not machine-readable: %+v", c.Failure)
	}
	if c.Retries != 2 {
		t.Fatalf("transient-class failure retried %d times, want CellRetries=2", c.Retries)
	}
	s.mu.Lock()
	failed, retries := s.counters.CellsFailed, s.counters.CellRetries
	s.mu.Unlock()
	if failed != 1 || retries != 2 {
		t.Fatalf("counters: failed=%d retries=%d", failed, retries)
	}
}

func startHTTP(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Shutdown() })
	return s, "http://" + s.Addr()
}

func TestHTTPSubmitAndArtifact(t *testing.T) {
	_, base := startHTTP(t, testConfig(t))
	resp, err := http.Post(base+"/v1/submit", "application/json", strings.NewReader(singleDoc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %s: %s", resp.Status, body)
	}
	var sr SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Schema != ResponseSchema || len(sr.Cells) != 1 {
		t.Fatalf("response: %+v", sr)
	}

	art, err := http.Get(base + "/v1/artifact/" + sr.Cells[0].Fp)
	if err != nil {
		t.Fatal(err)
	}
	defer art.Body.Close()
	if art.StatusCode != http.StatusOK {
		t.Fatalf("artifact: %s", art.Status)
	}
	var doc struct {
		Schema string `json:"schema"`
	}
	if err := json.NewDecoder(art.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "ccnuma-run/v1" {
		t.Fatalf("artifact schema = %q", doc.Schema)
	}

	if miss, err := http.Get(base + "/v1/artifact/ffffffffffffffff"); err != nil {
		t.Fatal(err)
	} else {
		miss.Body.Close()
		if miss.StatusCode != http.StatusNotFound {
			t.Fatalf("absent artifact: %s", miss.Status)
		}
	}
}

func TestSaturationRejectsAndReadyzFlips(t *testing.T) {
	cfg := testConfig(t)
	cfg.QueueDepth = 4
	s, base := startHTTP(t, cfg)

	get := func(path string) int {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz = %d", got)
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("readyz idle = %d", got)
	}

	// Saturate the admission queue (as a burst of slow submissions would)
	// and hold it while probing.
	s.mu.Lock()
	s.queued = cfg.QueueDepth
	s.mu.Unlock()
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz saturated = %d, want 503", got)
	}
	resp, err := http.Post(base+"/v1/submit", "application/json", strings.NewReader(singleDoc))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: %s: %s", resp.Status, body)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	if !bytes.Contains(body, []byte("queue")) {
		t.Fatalf("429 body not descriptive: %s", body)
	}

	// Capacity returns; the same submission is admitted.
	s.mu.Lock()
	s.queued = 0
	s.mu.Unlock()
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("readyz after release = %d", got)
	}
	ok, err := http.Post(base+"/v1/submit", "application/json", strings.NewReader(singleDoc))
	if err != nil {
		t.Fatal(err)
	}
	ok.Body.Close()
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("post-release submit: %s", ok.Status)
	}

	s.mu.Lock()
	rejected := s.counters.Rejected
	s.mu.Unlock()
	if rejected != 1 {
		t.Fatalf("Rejected counter = %d", rejected)
	}
}

func TestDrainingRejectsSubmissions(t *testing.T) {
	s, base := startHTTP(t, testConfig(t))
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	resp, err := http.Post(base+"/v1/submit", "application/json", strings.NewReader(singleDoc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: %s, want 503", resp.Status)
	}
	if got, _ := http.Get(base + "/readyz"); got != nil {
		got.Body.Close()
		if got.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("draining readyz: %s", got.Status)
		}
	}
	s.mu.Lock()
	s.draining = false
	s.mu.Unlock()
}

func TestStatuszReportsState(t *testing.T) {
	cfg := testConfig(t)
	cfg.SampleEvery = 1000
	s, base := startHTTP(t, cfg)
	if _, err := s.Submit(mustSpec(t, singleDoc)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(base + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc statusDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "ccnuma-servestatus/v1" {
		t.Fatalf("statusz schema %q", doc.Schema)
	}
	if doc.Store.Objects != 1 || doc.Counters.CellsComputed != 1 {
		t.Fatalf("statusz: store=%+v counters=%+v", doc.Store, doc.Counters)
	}
	if doc.Recovery == nil {
		t.Fatal("statusz missing recovery report")
	}
	if len(doc.Samples) == 0 {
		t.Fatal("statusz has no sampler rows despite SampleEvery")
	}
}

func TestSubmitResponseDeterministicBytes(t *testing.T) {
	// Two fresh servers over fresh stores must publish byte-identical
	// artifacts for the same cell — the property that lets the torture
	// harness compare resumed artifacts against an uninterrupted baseline.
	var payloads [][]byte
	for i := 0; i < 2; i++ {
		cfg := testConfig(t)
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := s.Submit(mustSpec(t, singleDoc))
		if err != nil {
			t.Fatal(err)
		}
		payload, ok, err := s.store.Get(resp.Cells[0].Fp)
		if err != nil || !ok {
			t.Fatalf("artifact missing: ok=%v err=%v", ok, err)
		}
		payloads = append(payloads, payload)
		s.Shutdown()
	}
	if !bytes.Equal(payloads[0], payloads[1]) {
		t.Fatal("artifacts for the same cell differ across independent servers")
	}
}

func TestRejectsFaultCampaigns(t *testing.T) {
	spec := mustSpec(t, singleDoc)
	spec.Faults = &scenario.FaultPlan{}
	if _, err := ExpandCells(spec); err == nil {
		t.Fatal("fault campaign accepted by serve")
	}
}
