package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"ccnuma/internal/obs"
	"ccnuma/internal/scenario"
	"ccnuma/internal/store"
)

// maxSubmitBytes bounds a submitted scenario document; real scenarios are
// a few hundred bytes, so 1 MiB is generous without being a DoS vector.
const maxSubmitBytes = 1 << 20

func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/submit", s.handleSubmit)
	mux.HandleFunc("GET /v1/artifact/{fp}", s.handleArtifact)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	return mux
}

// apiError is the machine-readable error body for non-2xx responses.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

// handleSubmit accepts a ccnuma-scenario/v1 document and blocks until
// every cell is served (hit), computed, or failed. Overload is a 429 with
// a Retry-After estimate; drain is a 503.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSubmitBytes+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	if len(body) > maxSubmitBytes {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			apiError{Error: fmt.Sprintf("scenario document exceeds %d bytes", maxSubmitBytes)})
		return
	}
	spec, err := scenario.LoadBytes(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	resp, err := s.Submit(spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, resp)
	case errors.Is(err, errRejected):
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfter()))
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
	case errors.Is(err, errDraining):
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
	}
}

// handleArtifact serves stored ccnuma-run/v1 bytes verbatim. The store
// verifies the object hash on every read, so a 200 body is guaranteed
// uncorrupted.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	payload, ok, err := s.store.Get(fp)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no artifact for fingerprint " + fp})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(payload)
}

// handleHealthz reports process liveness: 200 whenever the process can
// answer at all.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

// handleReadyz reports willingness to accept new work: 503 while
// draining or while the admission queue is saturated, 200 otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining, queued := s.draining, s.queued
	depth := s.cfg.QueueDepth
	s.mu.Unlock()
	switch {
	case draining:
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
	case queued >= depth:
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "saturated: %d/%d cells queued\n", queued, depth)
	default:
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ready\n")
	}
}

// statusDoc is the /statusz body: serving counters, the admission queue,
// the store's live stats and startup recovery report, pool utilization,
// and the latest computed cell's sample rows.
type statusDoc struct {
	Schema   string             `json:"schema"`
	Draining bool               `json:"draining"`
	Queued   int                `json:"queued"`
	Depth    int                `json:"queueDepth"`
	Counters Counters           `json:"counters"`
	Store    store.Stats        `json:"store"`
	Recovery *store.Recovery    `json:"recovery"`
	Pool     *obs.RunnerUtilDoc `json:"pool,omitempty"`
	Samples  []obs.Sample       `json:"samples,omitempty"`
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	doc := statusDoc{
		Schema:   "ccnuma-servestatus/v1",
		Draining: s.draining,
		Queued:   s.queued,
		Depth:    s.cfg.QueueDepth,
		Counters: s.counters,
		Recovery: s.Recovery,
		Samples:  append([]obs.Sample(nil), s.samples...),
	}
	s.mu.Unlock()
	doc.Store = s.store.StatsSnapshot()
	doc.Pool = obs.NewRunnerUtilDoc(s.usage, 8)
	writeJSON(w, http.StatusOK, doc)
}

// probeExecCycles pulls the headline metric out of a stored artifact
// without decoding the full document.
func probeExecCycles(payload []byte) int64 {
	var probe struct {
		Metrics struct {
			ExecCycles int64 `json:"execCycles"`
		} `json:"metrics"`
	}
	if json.Unmarshal(payload, &probe) != nil {
		return 0
	}
	return probe.Metrics.ExecCycles
}
