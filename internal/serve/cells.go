package serve

import (
	"bytes"
	"fmt"

	"ccnuma/internal/config"
	"ccnuma/internal/machine"
	"ccnuma/internal/obs"
	"ccnuma/internal/scenario"
	"ccnuma/internal/workload"
)

// Cell is one unit of serveable work: a single fully-resolved simulation,
// content-addressed by the fingerprint of its normalized scenario. A plain
// scenario submission is one cell; a sweep submission expands value-major
// into one cell per (value, arch) grid point, exactly like ccsweep.
type Cell struct {
	// Arch and Value locate the cell in its sweep grid (HasValue false for
	// a plain single-run submission).
	Arch     string
	Value    int
	HasValue bool
	// Spec is the cell's normalized scenario: machine and workload only,
	// no name, sweep, fault, or jobs section, so the fingerprint depends
	// on nothing but the experiment itself.
	Spec *scenario.Spec
	// Canon is Spec's canonical serialization and Fp its fingerprint —
	// the store key, and the key memoized hits are served under.
	Canon []byte
	Fp    string
	// charged records that this cell holds one unit of the server's
	// admission queue, released when the cell finishes or is abandoned.
	charged bool
}

// normalizeCell strips everything that does not shape the simulation from
// a resolved machine+workload pair, so that the same experiment submitted
// via different documents (spelled-out defaults, different names, sweep
// grids that overlap) content-addresses identically.
func normalizeCell(cfg config.Config, w scenario.Workload) (*Cell, error) {
	cs := &scenario.Spec{
		SchemaName: scenario.Schema,
		Machine:    cfg,
		Workload:   w,
	}
	canon, err := cs.Canonical()
	if err != nil {
		return nil, err
	}
	fp, err := cs.Fingerprint()
	if err != nil {
		return nil, err
	}
	return &Cell{Spec: cs, Canon: canon, Fp: fp}, nil
}

// ExpandCells resolves a submitted scenario into its cells. Fault
// campaigns are not serveable (their artifacts aggregate a whole seeded
// campaign, not one memoizable run) and are rejected at validation.
func ExpandCells(spec *scenario.Spec) ([]*Cell, error) {
	if spec.Faults != nil {
		return nil, fmt.Errorf("serve: fault campaigns are not serveable; submit them to ccchaos")
	}
	if spec.Sweep == nil {
		c, err := normalizeCell(spec.Machine, spec.Workload)
		if err != nil {
			return nil, err
		}
		return []*Cell{c}, nil
	}
	sw := spec.Sweep
	var cells []*Cell
	for _, v := range sw.Values {
		for _, arch := range sw.Archs {
			cfg, err := spec.Machine.WithArch(arch)
			if err != nil {
				return nil, err
			}
			if err := scenario.ApplySweepValue(&cfg, sw.Param, v); err != nil {
				return nil, err
			}
			c, err := normalizeCell(cfg, spec.Workload)
			if err != nil {
				return nil, fmt.Errorf("serve: cell value=%d arch=%s: %w", v, arch, err)
			}
			c.Arch, c.Value, c.HasValue = arch, v, true
			cells = append(cells, c)
		}
	}
	return cells, nil
}

// computeCell runs one cell's simulation and serializes its ccnuma-run/v1
// artifact. The artifact embeds the cell's canonical scenario, so `ccsim
// -replay` on served bytes reproduces the run; it never includes host
// timing, so the bytes are deterministic — the property the kill-torture
// harness pins by comparing resumed sweeps against uninterrupted ones. A
// panic anywhere in the simulation (the protocol's fail-stop included) is
// captured and classified, never propagated into the serving loop.
func computeCell(c *Cell, sampler *obs.Sampler) (payload []byte, fail *obs.FailureDoc) {
	defer func() {
		if p := recover(); p != nil {
			payload, fail = nil, machine.ClassifyFailure(p)
		}
	}()
	cfg := c.Spec.Machine
	app := c.Spec.Workload.App
	size, err := c.Spec.Size()
	if err != nil {
		return nil, machine.ClassifyFailure(err)
	}
	m, err := machine.New(cfg, app)
	if err != nil {
		return nil, machine.ClassifyFailure(err)
	}
	if sampler != nil {
		m.AttachSampler(sampler)
	}
	w, err := workload.NewSeeded(app, size, m.NProcs(), c.Spec.Workload.Seed)
	if err != nil {
		return nil, machine.ClassifyFailure(err)
	}
	if err := w.Setup(m); err != nil {
		return nil, machine.ClassifyFailure(err)
	}
	r, err := m.Run(w.Body)
	if err != nil {
		return nil, machine.ClassifyFailure(err)
	}
	if err := w.Verify(); err != nil {
		return nil, machine.ClassifyFailure(fmt.Errorf("verification failed: %w", err))
	}

	art := obs.NewArtifact("ccserved", c.Spec.Workload.Size, &cfg, r)
	art.Seed = c.Spec.Workload.Seed
	art.Scenario = c.Canon
	art.ScenarioFingerprint = c.Fp
	if cfg.Robust() {
		art.Recovery = obs.NewRecoveryDoc(&cfg, r, nil)
	}
	var buf bytes.Buffer
	if err := art.WriteJSON(&buf); err != nil {
		return nil, machine.ClassifyFailure(err)
	}
	return buf.Bytes(), nil
}
