package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		got, err := Map(context.Background(), workers, 100, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapStreamDoneInIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var seen []int
		_, err := MapStream(context.Background(), workers, 50, func(i int) (int, error) {
			// Finish out of order: later jobs are faster.
			time.Sleep(time.Duration(50-i) * 10 * time.Microsecond)
			return i, nil
		}, func(i, v int) {
			if i != v {
				t.Errorf("done(%d, %d): index/result mismatch", i, v)
			}
			seen = append(seen, i)
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(seen) != 50 {
			t.Fatalf("workers=%d: done fired %d times, want 50", workers, len(seen))
		}
		for i, v := range seen {
			if v != i {
				t.Fatalf("workers=%d: done order %v not ascending", workers, seen)
			}
		}
	}
}

func TestMapZeroJobs(t *testing.T) {
	got, err := Map(context.Background(), 4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapSerialRunsInline(t *testing.T) {
	// workers == 1 must execute on the calling goroutine: jobs can observe
	// and mutate caller state without synchronization.
	before := runtime.NumGoroutine()
	sum := 0
	_, err := Map(context.Background(), 1, 10, func(i int) (int, error) {
		sum += i
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 45 {
		t.Fatalf("sum = %d, want 45", sum)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("serial path grew goroutines: %d -> %d", before, after)
	}
}

func TestMapLowestIndexErrorWins(t *testing.T) {
	for _, workers := range []int{1, 4} {
		boom := errors.New("boom")
		_, err := Map(context.Background(), workers, 100, func(i int) (int, error) {
			if i == 7 || i == 23 {
				return 0, boom
			}
			return i, nil
		})
		var je *JobError
		if !errors.As(err, &je) {
			t.Fatalf("workers=%d: error %v is not a *JobError", workers, err)
		}
		if je.Index != 7 {
			t.Fatalf("workers=%d: failing index = %d, want 7", workers, je.Index)
		}
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: error %v does not unwrap to boom", workers, err)
		}
	}
}

func TestMapErrorSkipsOnlyHigherIndices(t *testing.T) {
	for _, workers := range []int{1, 8} {
		var ran [200]atomic.Bool
		_, err := Map(context.Background(), workers, 200, func(i int) (int, error) {
			ran[i].Store(true)
			if i == 50 {
				return 0, errors.New("fail")
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		for i := 0; i <= 50; i++ {
			if !ran[i].Load() {
				t.Fatalf("workers=%d: job %d below the failure never ran", workers, i)
			}
		}
		skipped := 0
		for i := 51; i < 200; i++ {
			if !ran[i].Load() {
				skipped++
			}
		}
		if workers > 1 && skipped == 0 {
			t.Logf("workers=%d: no jobs were skipped after cancellation (slow machine?)", workers)
		}
	}
}

func TestMapPanicCaptured(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Map(context.Background(), workers, 20, func(i int) (int, error) {
			if i == 3 {
				panic("kaboom")
			}
			return i, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: error %v is not a *PanicError", workers, err)
		}
		if pe.Index != 3 || pe.Value != "kaboom" {
			t.Fatalf("workers=%d: got index=%d value=%v", workers, pe.Index, pe.Value)
		}
		if !strings.Contains(pe.Stack, "runner_test.go") {
			t.Fatalf("workers=%d: stack does not name the panic site:\n%s", workers, pe.Stack)
		}
	}
}

func TestMapContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	var completed atomic.Int64
	errc := make(chan error, 1)
	go func() {
		_, err := Map(ctx, 4, 1000, func(i int) (int, error) {
			if i == 0 {
				select {
				case started <- struct{}{}:
				default:
				}
			}
			time.Sleep(100 * time.Microsecond)
			completed.Add(1)
			return i, nil
		})
		errc <- err
	}()
	<-started
	cancel()
	err := <-errc
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not unwrap to context.Canceled", err)
	}
	if n := completed.Load(); n == 1000 {
		t.Fatal("cancellation did not skip any jobs")
	}
}

func TestMapCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		_, err := Map(ctx, workers, 10, func(i int) (int, error) {
			ran.Add(1)
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v", workers, err)
		}
	}
}

func TestMapPartialAllCompletedOnSuccess(t *testing.T) {
	for _, workers := range []int{1, 4} {
		got, completed, err := MapPartial(context.Background(), workers, 40, func(i int) (int, error) {
			return i + 1, nil
		}, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range completed {
			if !completed[i] {
				t.Fatalf("workers=%d: completed[%d] = false on a clean run", workers, i)
			}
			if got[i] != i+1 {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, got[i], i+1)
			}
		}
	}
}

// TestMapPartialMarksInFlightCompletions is the ccserved-drain contract:
// after cancellation, jobs already in flight finish, and every job the
// marker reports as completed carries a real result — even jobs above the
// error index, whose results MapStream callers cannot distinguish from
// zero values.
func TestMapPartialMarksInFlightCompletions(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 200
	release := make(chan struct{})
	var started atomic.Int64
	var finished [n]atomic.Bool
	_, completed, err := MapPartial(ctx, 4, n, func(i int) (int, error) {
		if i == 0 {
			// Wait until the other three workers hold jobs, so cancellation
			// provably lands while jobs are in flight.
			for started.Load() < 3 {
				runtime.Gosched()
			}
			cancel()
			close(release) // then let the in-flight jobs finish
			return 0, ctx.Err()
		}
		started.Add(1)
		<-release
		finished[i].Store(true)
		return i * 10, nil
	}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not unwrap to context.Canceled", err)
	}
	// Every job that ran fn to completion must be marked, and only those.
	for i := 1; i < n; i++ {
		if completed[i] != finished[i].Load() {
			t.Fatalf("completed[%d] = %v, but job finished = %v", i, completed[i], finished[i].Load())
		}
	}
	if completed[0] {
		t.Fatal("completed[0] = true for the failing job")
	}
	marked := 0
	for _, c := range completed {
		if c {
			marked++
		}
	}
	if marked == 0 {
		t.Fatal("no in-flight job was marked completed after cancellation")
	}
	if marked == n-1 {
		t.Fatal("every job completed; cancellation skipped nothing")
	}
}

func TestMapPartialResultsMatchMarkers(t *testing.T) {
	// Results for completed jobs must be the real fn results; uncompleted
	// slots hold the zero value.
	boom := errors.New("boom")
	results, completed, err := MapPartial(context.Background(), 4, 100, func(i int) (int, error) {
		if i == 30 {
			return 0, boom
		}
		return i + 1000, nil
	}, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	for i, c := range completed {
		if c && results[i] != i+1000 {
			t.Fatalf("completed[%d] set but results[%d] = %d", i, i, results[i])
		}
		if !c && results[i] != 0 {
			t.Fatalf("completed[%d] clear but results[%d] = %d (not zero)", i, i, results[i])
		}
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("Workers(3) != 3")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) {
		t.Fatal("Workers(0) != GOMAXPROCS")
	}
	if Workers(-1) != runtime.GOMAXPROCS(0) {
		t.Fatal("Workers(-1) != GOMAXPROCS")
	}
}

// TestStress is the dedicated -race stress test from the issue: many tiny
// jobs, cancellation mid-flight, and a panicking job, all interleaved
// across repeated rounds to shake out pool races.
func TestStress(t *testing.T) {
	ctx := context.Background()
	for round := 0; round < 20; round++ {
		// Many tiny jobs, plain success path.
		if _, err := Map(ctx, 8, 500, func(i int) (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}

		// One panicking job at a varying position.
		pos := round * 17 % 300
		_, err := Map(ctx, 8, 300, func(i int) (int, error) {
			if i == pos {
				panic(fmt.Sprintf("round %d", round))
			}
			return i, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) || pe.Index != pos {
			t.Fatalf("round %d: got %v, want panic at %d", round, err, pos)
		}

		// Cancellation mid-flight.
		cctx, cancel := context.WithCancel(ctx)
		var n atomic.Int64
		go func() {
			for n.Load() < 50 {
				runtime.Gosched()
			}
			cancel()
		}()
		_, err = Map(cctx, 8, 5000, func(i int) (int, error) {
			n.Add(1)
			return i, nil
		})
		cancel()
		// Either the whole sweep finished before cancel landed (fast
		// machine) or we got a cancellation error; both are legal, races
		// in either path are what -race is here to catch.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("round %d: unexpected error %v", round, err)
		}
	}
}
