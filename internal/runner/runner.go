// Package runner fans independent simulation jobs across a bounded pool of
// worker goroutines while preserving the exact observable behaviour of a
// serial loop. Every experiment in this repository — figure sweeps, tables,
// chaos campaigns, ccverify replays — is a set of self-contained
// simulations (each owns its engine, machine, and RNGs), so they can run
// concurrently; what must NOT change is the order in which their results
// are observed, because progress lines, memo caches, and artifact files are
// all order-sensitive.
//
// The contract:
//
//   - Results are keyed by job index, never by completion order.
//   - The done callback (MapStream) fires in strict index order, on the
//     calling goroutine, so callers may touch shared state (caches,
//     writers) without locks.
//   - workers == 1 runs every job inline on the calling goroutine — the
//     serial loop, bit for bit, with no goroutines spawned at all.
//   - A job panic is captured as a *PanicError; it cancels the pool and is
//     returned like any other error.
//   - On error, the error with the lowest job index wins, and every job
//     with a smaller index is guaranteed to have completed — so partial
//     results below the failure point are trustworthy.
//   - On cancellation, jobs already in flight finish and their results are
//     recorded; MapPartial's completed markers report exactly which jobs
//     ran to completion, so a draining caller can account for (journal,
//     persist) every finished unit of work.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// PanicError wraps a panic recovered from a job so the sweep survives and
// the failure is attributable to one job.
type PanicError struct {
	Index int
	Value interface{}
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %d panicked: %v", e.Index, e.Value)
}

// JobError wraps a job's error with its index so callers can report which
// point of a sweep failed.
type JobError struct {
	Index int
	Err   error
}

func (e *JobError) Error() string {
	return fmt.Sprintf("runner: job %d: %v", e.Index, e.Err)
}

func (e *JobError) Unwrap() error { return e.Err }

// Workers normalizes a -jobs flag value: n if positive, else GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(0..n-1) across workers goroutines and returns the results
// keyed by index. See MapStream for the full contract; Map is MapStream
// with no per-result callback.
func Map[T any](ctx context.Context, workers, n int, fn func(int) (T, error)) ([]T, error) {
	return MapStream(ctx, workers, n, fn, nil)
}

// MapStream runs fn(0..n-1) across workers goroutines. As results arrive
// they are released in strict index order: done(i, result) — if non-nil —
// is invoked on MapStream's calling goroutine for i = 0, 1, 2, ... with no
// gaps up to the first failure. The returned slice holds every result by
// index.
//
// The first error (by job index, not completion time) cancels the context
// seen by remaining jobs and is returned, wrapped in *JobError (or
// *PanicError for a panic). Jobs already running are allowed to finish;
// jobs not yet started are skipped. All skipped indices are strictly
// greater than the returned error's index.
func MapStream[T any](ctx context.Context, workers, n int, fn func(int) (T, error), done func(int, T)) ([]T, error) {
	results, _, err := MapPartial(ctx, workers, n, fn, done)
	return results, err
}

// MapPartial is MapStream with a partial-results marker: completed[i]
// reports whether job i ran fn to a successful return, so results[i] is a
// real result rather than a zero value. The distinction only matters on a
// failed or cancelled run — in-flight jobs are allowed to finish after
// cancellation, and their results ARE recorded (with completed[i] = true)
// even though done is no longer invoked for them. Callers that must
// account for every finished unit of work on shutdown — ccserved's drain
// journals exactly the cells that completed — consult the marker instead
// of guessing from the error index.
//
// Invariants: completed[i] implies results[i] holds fn(i)'s result;
// done(i, …) was invoked iff completed[j] for every j <= i and no job
// <= i failed; on a nil error every entry of completed is true.
func MapPartial[T any](ctx context.Context, workers, n int, fn func(int) (T, error), done func(int, T)) ([]T, []bool, error) {
	if n < 0 {
		panic(fmt.Sprintf("runner: negative job count %d", n))
	}
	results := make([]T, n)
	completed := make([]bool, n)
	if n == 0 {
		return results, completed, nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}

	if workers == 1 {
		// Serial fast path: the plain loop, on this goroutine. No pool, no
		// channels, no goroutines — callers get today's behaviour exactly.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return results, completed, &JobError{Index: i, Err: err}
			}
			r, err := runJob(i, fn)
			if err != nil {
				return results, completed, err
			}
			results[i] = r
			completed[i] = true
			if done != nil {
				done(i, r)
			}
		}
		return results, completed, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		result T
		err    error
	}
	// jobs feeds indices to workers in ascending order; each worker pulls
	// the next unclaimed index. Ascending dispatch (plus the pool draining
	// lower indices first) is what guarantees that when job i fails, no
	// job below i was skipped.
	jobs := make(chan int)
	outcomes := make([]chan outcome, n)
	for i := range outcomes {
		outcomes[i] = make(chan outcome, 1)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				r, err := runJob(i, fn)
				outcomes[i] <- outcome{result: r, err: err}
			}
		}()
	}

	// Feeder: dispatch indices in order until cancelled. Closing jobs on
	// cancellation is what lets workers exit early.
	go func() {
		defer close(jobs)
		for i := 0; i < n; i++ {
			select {
			case jobs <- i:
			case <-ctx.Done():
				// Mark undispatched jobs as skipped so the collector
				// below never blocks on an outcome no worker will send.
				for ; i < n; i++ {
					outcomes[i] <- outcome{err: &JobError{Index: i, Err: ctx.Err()}}
				}
				return
			}
		}
	}()

	// Collect in index order on the calling goroutine. The first error
	// cancels the feeder; collection continues (jobs already dispatched
	// still post outcomes, and are marked completed) but done is no longer
	// invoked and the first error — necessarily the lowest-index one — is
	// kept.
	var firstErr error
	for i := 0; i < n; i++ {
		o := <-outcomes[i]
		if o.err != nil {
			if firstErr == nil {
				firstErr = o.err
				cancel()
			}
			continue
		}
		results[i] = o.result
		completed[i] = true
		if firstErr == nil && done != nil {
			done(i, o.result)
		}
	}
	wg.Wait()
	return results, completed, firstErr
}

// runJob invokes fn(i) with panic capture, reporting the job's busy window
// to the installed usage recorder (if any).
func runJob[T any](i int, fn func(int) (T, error)) (result T, err error) {
	if end := jobBegin(); end != nil {
		defer end()
	}
	defer func() {
		if p := recover(); p != nil {
			buf := make([]byte, 16<<10)
			buf = buf[:runtime.Stack(buf, false)]
			err = &PanicError{Index: i, Value: p, Stack: string(buf)}
		}
	}()
	r, jerr := fn(i)
	if jerr != nil {
		return result, &JobError{Index: i, Err: jerr}
	}
	return r, nil
}
