// Pool utilization: wall-clock observation of how many workers are busy
// at each instant of a MapStream run. Simulated time never appears here —
// this is host telemetry for the benchmark harness, answering "did the
// pool actually keep its workers fed, or did scheduling gaps (a serial
// pilot phase, a long straggler job, dispatch stalls) leave them idle?".
package runner

import (
	"sync"
	"sync/atomic"
	"time"
)

// usageEvent is one busy-count transition: at nanoseconds after Observe,
// the number of running jobs changed by delta.
type usageEvent struct {
	at    time.Duration
	delta int
}

// Usage accumulates worker busy/idle transitions for every MapStream call
// executed while it is installed via Observe. It is safe for concurrent
// use by pool workers.
type Usage struct {
	mu     sync.Mutex
	start  time.Time
	events []usageEvent
	jobs   int
}

// observer is the installed recorder; nil means recording is off and the
// pool pays one atomic load per job.
var observer atomic.Pointer[Usage]

// Observe installs u as the pool-wide usage recorder and starts its clock.
// It returns the uninstall function; recording covers every MapStream job
// that starts in between (including the workers == 1 serial path, which
// records as a single always-busy worker).
func Observe(u *Usage) func() {
	u.mu.Lock()
	u.start = time.Now()
	u.events = u.events[:0]
	u.jobs = 0
	u.mu.Unlock()
	observer.Store(u)
	return func() { observer.CompareAndSwap(u, nil) }
}

// jobBegin records a job start on the installed recorder (if any) and
// returns the matching end hook, or nil when recording is off.
func jobBegin() func() {
	u := observer.Load()
	if u == nil {
		return nil
	}
	u.add(+1)
	return func() { u.add(-1) }
}

func (u *Usage) add(delta int) {
	u.mu.Lock()
	u.events = append(u.events, usageEvent{at: time.Since(u.start), delta: delta})
	if delta > 0 {
		u.jobs++
	}
	u.mu.Unlock()
}

// UtilSample is one bucket of the utilization series: the mean number of
// busy workers over [AtMs, AtMs+bucket).
type UtilSample struct {
	AtMs float64 `json:"at_ms"`
	Busy float64 `json:"busy"`
}

// Summary reduces the recording to the numbers the benchmark artifact
// reports: jobs observed, wall time from first start to last end, the
// busy-worker integral (worker-milliseconds of actual work), the peak
// concurrency reached, and a bucketed busy-workers-over-time series (times
// relative to the first job start). With fewer than two events everything
// is zero.
func (u *Usage) Summary(buckets int) (jobs int, wallMs, busyMs float64, peak int, series []UtilSample) {
	u.mu.Lock()
	events := append([]usageEvent(nil), u.events...)
	jobs = u.jobs
	u.mu.Unlock()
	if len(events) < 2 {
		return jobs, 0, 0, 0, nil
	}
	first := events[0].at
	for i := range events {
		events[i].at -= first
	}
	wall := events[len(events)-1].at
	if wall <= 0 {
		return jobs, 0, 0, 0, nil
	}
	wallMs = float64(wall.Nanoseconds()) / 1e6
	if buckets < 1 {
		buckets = 1
	}
	series = make([]UtilSample, buckets)
	width := wall / time.Duration(buckets)
	if width <= 0 {
		width = 1
	}

	busy := 0
	var busyInt time.Duration // integral of busy count over time
	for i, ev := range events {
		if i > 0 && busy > 0 {
			lo, hi := events[i-1].at, ev.at
			busyInt += (hi - lo) * time.Duration(busy)
			for b := int(lo / width); b < len(series); b++ {
				bLo := width * time.Duration(b)
				if bLo >= hi {
					break
				}
				olo, ohi := maxDur(lo, bLo), minDur(hi, bLo+width)
				if ohi > olo {
					series[b].Busy += float64((ohi - olo).Nanoseconds()) * float64(busy)
				}
			}
		}
		busy += ev.delta
		if busy > peak {
			peak = busy
		}
	}
	busyMs = float64(busyInt.Nanoseconds()) / 1e6
	for i := range series {
		series[i].AtMs = float64((width * time.Duration(i)).Nanoseconds()) / 1e6
		series[i].Busy /= float64(width.Nanoseconds())
	}
	return jobs, wallMs, busyMs, peak, series
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
