package runner

import (
	"context"
	"testing"
	"time"
)

// TestUsageRecordsPool checks the utilization recorder end to end: jobs
// running on a 2-worker pool are observed with plausible wall/busy
// integrals, peak concurrency never exceeds the worker count, and the
// bucketed series accounts for the busy time.
func TestUsageRecordsPool(t *testing.T) {
	u := &Usage{}
	stop := Observe(u)
	_, err := Map(context.Background(), 2, 6, func(i int) (int, error) {
		time.Sleep(2 * time.Millisecond)
		return i, nil
	})
	stop()
	if err != nil {
		t.Fatal(err)
	}
	jobs, wallMs, busyMs, peak, series := u.Summary(8)
	if jobs != 6 {
		t.Errorf("jobs = %d, want 6", jobs)
	}
	if wallMs <= 0 || busyMs <= 0 {
		t.Fatalf("wallMs=%v busyMs=%v, want both positive", wallMs, busyMs)
	}
	if peak < 1 || peak > 2 {
		t.Errorf("peak = %d, want within [1,2] for a 2-worker pool", peak)
	}
	// 6 jobs x ~2ms of work cannot fit in less wall-time than busy/peak.
	if busyMs > float64(peak)*wallMs*1.01 {
		t.Errorf("busy integral %vms exceeds peak %d x wall %vms", busyMs, peak, wallMs)
	}
	if len(series) != 8 {
		t.Fatalf("series has %d buckets, want 8", len(series))
	}
	var mean float64
	for _, s := range series {
		if s.Busy < 0 || s.Busy > float64(peak)+0.01 {
			t.Errorf("bucket busy %v out of range [0,%d]", s.Busy, peak)
		}
		mean += s.Busy
	}
	mean /= float64(len(series))
	if mean <= 0 {
		t.Error("series mean busy is zero despite recorded work")
	}
}

// TestUsageOffByDefault checks that with no recorder installed the pool
// records nothing and Summary is empty.
func TestUsageOffByDefault(t *testing.T) {
	u := &Usage{}
	_, err := Map(context.Background(), 2, 3, func(i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if jobs, wallMs, _, _, _ := u.Summary(4); jobs != 0 || wallMs != 0 {
		t.Errorf("uninstalled recorder captured jobs=%d wallMs=%v", jobs, wallMs)
	}
}
