# Development workflow for the ccnuma simulator. `make check` is the
# pre-PR gate: formatting, vet, and the full test suite under the race
# detector at the small problem sizes the tests use.

GO ?= go

.PHONY: all build check fmt vet test race bench tables clean

all: build

build:
	$(GO) build ./...

# check is the pre-PR gate: gofmt must report nothing, vet must be clean,
# and every test must pass with the race detector on.
check: fmt vet race

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Regenerate every paper table/figure at smoke sizes.
tables:
	$(GO) run ./cmd/cctables -size test

clean:
	$(GO) clean
	rm -f ccsim ccsweep cctables cctrace
