# Development workflow for the ccnuma simulator. `make check` is the
# pre-PR gate: formatting, vet, and the full test suite under the race
# detector at the small problem sizes the tests use.

GO ?= go

.PHONY: all build check fmt vet test race bench microbench tables lint verify model chaos scenario attribution serve-smoke torture-smoke pdes-smoke clean

all: build

build:
	$(GO) build ./...

# check is the pre-PR gate: gofmt must report nothing, vet and cclint must
# be clean (cclint also rejects //nolint and //cclint:ignore directives
# that carry no reason, and fails when the committed protocol model is
# stale), every test must pass with the race detector on, the replay
# checker must close the 2-node state space with zero violations, the
# extracted-model checker must close its abstract state space, and
# ccbench's smoke run must finish without a gross performance regression
# against the committed BENCH artifact.
check: fmt vet lint race verify model bench scenario attribution serve-smoke torture-smoke pdes-smoke

# lint runs the repo's own analyzer suite (internal/lint): exhaustive
# switches over protocol/cache/directory enums, no wall-clock or global
# rand in simulated-time packages, no no-op scheduled callbacks, and
# reasons on every suppression.
lint:
	$(GO) run ./cmd/cclint ./...

# verify model-checks the real protocol stack on the smallest interesting
# machine. Must reach a fixpoint with zero invariant violations.
verify:
	$(GO) run ./cmd/ccverify -nodes 2 -procs 1 -q

# model is the extracted-model gate: the committed ccnuma-model artifact
# must match a fresh extraction of internal/core + internal/protocol, the
# abstract 4-node machine (with finite-buffer NACK/backoff edges) must
# reach a violation-free fixpoint, and a concrete replay must validate
# its transitions against the extracted rule table.
model:
	$(GO) run ./cmd/ccmodel -stale
	$(GO) run ./cmd/ccmodel -check -nodes 4 -robust
	$(GO) run ./cmd/ccmodel -conform

# chaos smoke-tests the recovery machinery: one kernel under 25 seeded
# fault schedules plus the single-fault recovery sweep. Every run must
# complete, verify, and drain with zero invariant violations.
chaos:
	$(GO) run ./cmd/ccchaos -app fft -schedules 25 -q
	$(GO) run ./cmd/ccverify -nodes 2 -procs 1 -sweep-faults -q

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench is the perf-regression smoke gate: quick engine microbenchmarks and
# reduced end-to-end runs, compared against the newest committed
# BENCH_*.json at 4x the normal threshold (wall time on shared CI is
# noisy; only gross regressions fail). `go run ./cmd/ccbench` with no
# flags performs the full run and writes a new artifact.
bench:
	$(GO) run ./cmd/ccbench -smoke

# scenario smoke-tests the declarative layer end to end: run a committed
# spec, replay the artifact it wrote, and require the replayed artifact
# to be byte-identical to the original.
scenario:
	@tmp="$$(mktemp -d)"; \
	$(GO) run ./cmd/ccsim -spec examples/scenarios/base.json -json "$$tmp/run.json" >/dev/null && \
	$(GO) run ./cmd/ccsim -replay "$$tmp/run.json" -json "$$tmp/replay.json" >/dev/null && \
	cmp "$$tmp/run.json" "$$tmp/replay.json" && echo "scenario: replay byte-identical"; \
	status=$$?; rm -rf "$$tmp"; exit $$status

# attribution smoke-tests the span-tracing layer: a small kernel with
# per-transaction attribution on must complete (machine.Run fails the run
# if the stage spans do not partition the end-to-end latencies exactly)
# and its artifact must carry the attribution section of the
# ccnuma-run/v1 schema.
attribution:
	@tmp="$$(mktemp -d)"; \
	$(GO) run ./cmd/ccsim -app fft -arch HWC -nodes 4 -ppn 2 -size test -attribution -json "$$tmp/attr.json" >/dev/null && \
	grep -q '"attribution"' "$$tmp/attr.json" && echo "attribution: conservation + schema OK"; \
	status=$$?; rm -rf "$$tmp"; exit $$status

# serve-smoke exercises the experiment service end to end through real
# binaries: start ccserved, submit a sweep with ccsubmit, resubmit it
# (must be all store hits), fetch one artifact, and drain gracefully.
serve-smoke:
	@tmp="$$(mktemp -d)"; status=1; \
	$(GO) build -o "$$tmp/ccserved" ./cmd/ccserved && \
	$(GO) build -o "$$tmp/ccsubmit" ./cmd/ccsubmit && \
	"$$tmp/ccserved" -addr 127.0.0.1:18347 -store "$$tmp/store" -compute-log "$$tmp/compute.log" 2>"$$tmp/served.log" & pid=$$!; \
	for i in $$(seq 1 50); do \
		if curl -fsS http://127.0.0.1:18347/readyz >/dev/null 2>&1; then break; fi; sleep 0.1; done; \
	"$$tmp/ccsubmit" -addr 127.0.0.1:18347 -scenario examples/scenarios/2hwc-vs-2ppc.json >"$$tmp/first.out" && \
	"$$tmp/ccsubmit" -addr 127.0.0.1:18347 -scenario examples/scenarios/2hwc-vs-2ppc.json >"$$tmp/second.out" && \
	! grep -q computed "$$tmp/second.out" && grep -q hit "$$tmp/second.out" && \
	fp="$$(awk 'NR==2{print $$1}' "$$tmp/first.out")" && \
	"$$tmp/ccsubmit" -addr 127.0.0.1:18347 -fetch "$$fp" | grep -q '"schema": "ccnuma-run/v1"' && \
	curl -fsS http://127.0.0.1:18347/statusz | grep -q '"quarantined": 0' && \
	status=0 && echo "serve-smoke: memoized resubmit + artifact fetch OK"; \
	kill -TERM $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	if [ $$status -ne 0 ]; then echo "serve-smoke FAILED"; cat "$$tmp/served.log"; fi; \
	rm -rf "$$tmp"; exit $$status

# pdes-smoke is the sharded-scheduler gate: the same scenario run serial
# (-shards 1) and sharded must write byte-identical artifacts — two kernels
# (one with attribution + robustness on, one two-engine) plus one seeded
# chaos schedule whose full progress output is compared byte for byte.
pdes-smoke:
	@tmp="$$(mktemp -d)"; status=1; \
	$(GO) run ./cmd/ccsim -app fft -arch HWC -nodes 4 -ppn 2 -size test -attribution -robust -json "$$tmp/fft-1.json" >/dev/null && \
	$(GO) run ./cmd/ccsim -app fft -arch HWC -nodes 4 -ppn 2 -size test -attribution -robust -shards 4 -json "$$tmp/fft-4.json" >/dev/null && \
	cmp "$$tmp/fft-1.json" "$$tmp/fft-4.json" && \
	$(GO) run ./cmd/ccsim -app radix -arch 2PPC -nodes 4 -ppn 2 -size test -json "$$tmp/radix-1.json" >/dev/null && \
	$(GO) run ./cmd/ccsim -app radix -arch 2PPC -nodes 4 -ppn 2 -size test -shards 2 -json "$$tmp/radix-2.json" >/dev/null && \
	cmp "$$tmp/radix-1.json" "$$tmp/radix-2.json" && \
	$(GO) run ./cmd/ccchaos -app fft -schedules 1 -first 3 >"$$tmp/chaos-1.out" && \
	$(GO) run ./cmd/ccchaos -app fft -schedules 1 -first 3 -shards 4 >"$$tmp/chaos-4.out" && \
	cmp "$$tmp/chaos-1.out" "$$tmp/chaos-4.out" && \
	status=0 && echo "pdes-smoke: sharded runs byte-identical to serial"; \
	rm -rf "$$tmp"; exit $$status

# torture-smoke is the crash-safety gate: a real ccserved process is
# SIGKILLed mid-sweep and restarted for at least 25 seeded cycles; the
# store must never corrupt, never recompute a completed cell, and every
# surviving artifact must be byte-identical to an uninterrupted run.
torture-smoke:
	$(GO) test -count=1 -run TestKillTorture -v ./internal/serve/

# microbench runs the go-test benchmark suites (paper artifacts at SizeTest
# plus the engine hot-loop benchmarks in internal/sim).
microbench:
	$(GO) test -bench . -benchtime 1x -run '^$$' . ./internal/sim

# Regenerate every paper table/figure at smoke sizes.
tables:
	$(GO) run ./cmd/cctables -size test

clean:
	$(GO) clean
	rm -f ccsim ccsweep cctables cctrace ccchaos
