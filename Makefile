# Development workflow for the ccnuma simulator. `make check` is the
# pre-PR gate: formatting, vet, and the full test suite under the race
# detector at the small problem sizes the tests use.

GO ?= go

.PHONY: all build check fmt vet test race bench microbench tables lint verify model chaos scenario attribution clean

all: build

build:
	$(GO) build ./...

# check is the pre-PR gate: gofmt must report nothing, vet and cclint must
# be clean (cclint also rejects //nolint and //cclint:ignore directives
# that carry no reason, and fails when the committed protocol model is
# stale), every test must pass with the race detector on, the replay
# checker must close the 2-node state space with zero violations, the
# extracted-model checker must close its abstract state space, and
# ccbench's smoke run must finish without a gross performance regression
# against the committed BENCH artifact.
check: fmt vet lint race verify model bench scenario attribution

# lint runs the repo's own analyzer suite (internal/lint): exhaustive
# switches over protocol/cache/directory enums, no wall-clock or global
# rand in simulated-time packages, no no-op scheduled callbacks, and
# reasons on every suppression.
lint:
	$(GO) run ./cmd/cclint ./...

# verify model-checks the real protocol stack on the smallest interesting
# machine. Must reach a fixpoint with zero invariant violations.
verify:
	$(GO) run ./cmd/ccverify -nodes 2 -procs 1 -q

# model is the extracted-model gate: the committed ccnuma-model artifact
# must match a fresh extraction of internal/core + internal/protocol, the
# abstract 4-node machine (with finite-buffer NACK/backoff edges) must
# reach a violation-free fixpoint, and a concrete replay must validate
# its transitions against the extracted rule table.
model:
	$(GO) run ./cmd/ccmodel -stale
	$(GO) run ./cmd/ccmodel -check -nodes 4 -robust
	$(GO) run ./cmd/ccmodel -conform

# chaos smoke-tests the recovery machinery: one kernel under 25 seeded
# fault schedules plus the single-fault recovery sweep. Every run must
# complete, verify, and drain with zero invariant violations.
chaos:
	$(GO) run ./cmd/ccchaos -app fft -schedules 25 -q
	$(GO) run ./cmd/ccverify -nodes 2 -procs 1 -sweep-faults -q

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench is the perf-regression smoke gate: quick engine microbenchmarks and
# reduced end-to-end runs, compared against the newest committed
# BENCH_*.json at 4x the normal threshold (wall time on shared CI is
# noisy; only gross regressions fail). `go run ./cmd/ccbench` with no
# flags performs the full run and writes a new artifact.
bench:
	$(GO) run ./cmd/ccbench -smoke

# scenario smoke-tests the declarative layer end to end: run a committed
# spec, replay the artifact it wrote, and require the replayed artifact
# to be byte-identical to the original.
scenario:
	@tmp="$$(mktemp -d)"; \
	$(GO) run ./cmd/ccsim -spec examples/scenarios/base.json -json "$$tmp/run.json" >/dev/null && \
	$(GO) run ./cmd/ccsim -replay "$$tmp/run.json" -json "$$tmp/replay.json" >/dev/null && \
	cmp "$$tmp/run.json" "$$tmp/replay.json" && echo "scenario: replay byte-identical"; \
	status=$$?; rm -rf "$$tmp"; exit $$status

# attribution smoke-tests the span-tracing layer: a small kernel with
# per-transaction attribution on must complete (machine.Run fails the run
# if the stage spans do not partition the end-to-end latencies exactly)
# and its artifact must carry the attribution section of the
# ccnuma-run/v1 schema.
attribution:
	@tmp="$$(mktemp -d)"; \
	$(GO) run ./cmd/ccsim -app fft -arch HWC -nodes 4 -ppn 2 -size test -attribution -json "$$tmp/attr.json" >/dev/null && \
	grep -q '"attribution"' "$$tmp/attr.json" && echo "attribution: conservation + schema OK"; \
	status=$$?; rm -rf "$$tmp"; exit $$status

# microbench runs the go-test benchmark suites (paper artifacts at SizeTest
# plus the engine hot-loop benchmarks in internal/sim).
microbench:
	$(GO) test -bench . -benchtime 1x -run '^$$' . ./internal/sim

# Regenerate every paper table/figure at smoke sizes.
tables:
	$(GO) run ./cmd/cctables -size test

clean:
	$(GO) clean
	rm -f ccsim ccsweep cctables cctrace ccchaos
