// Package ccnuma's root benchmark suite regenerates every table and figure
// of the paper at reduced (SizeTest) problem sizes, one benchmark per
// artifact, reporting the headline quantity of each as a custom metric.
// Full-size regeneration is cmd/cctables; these benches keep
// `go test -bench=.` fast while exercising the identical code paths.
package ccnuma

import (
	"testing"

	"ccnuma/internal/config"
	"ccnuma/internal/exp"
	"ccnuma/internal/machine"
	"ccnuma/internal/pram"
	"ccnuma/internal/protocol"
	"ccnuma/internal/workload"
)

// BenchmarkTable1Config times configuration construction and validation
// (Table 1 is a parameter echo; this guards its cost and correctness).
func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := config.Base()
		if err := cfg.Validate(); err != nil {
			b.Fatal(err)
		}
	}
	if exp.Table1() == "" {
		b.Fatal("empty table 1")
	}
}

// BenchmarkTable2SubOps times the sub-operation occupancy model.
func BenchmarkTable2SubOps(b *testing.B) {
	costs := config.DefaultCosts()
	var sum int64
	for i := 0; i < b.N; i++ {
		for op := config.SubOp(0); op < config.SubOp(config.NumSubOps); op++ {
			sum += int64(costs.Cost(config.HWC, op)) + int64(costs.Cost(config.PPC, op))
		}
	}
	if sum == 0 {
		b.Fatal("zero cost table")
	}
}

// BenchmarkTable3Latency measures the no-contention remote clean read miss
// (the paper's 142/212-cycle probe) end to end.
func BenchmarkTable3Latency(b *testing.B) {
	var res exp.Table3Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = exp.Table3()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.HWC), "HWC-cycles")
	b.ReportMetric(float64(res.PPC), "PPC-cycles")
	b.ReportMetric(100*res.RelativeIncrease(), "PPC-increase-%")
}

// BenchmarkTable4Handlers times handler occupancy computation over the
// full Table 4 set.
func BenchmarkTable4Handlers(b *testing.B) {
	costs := config.DefaultCosts()
	var sum int64
	for i := 0; i < b.N; i++ {
		for _, h := range protocol.Table4Handlers {
			sum += int64(protocol.Occupancy(&costs, config.HWC, h, 0))
			sum += int64(protocol.Occupancy(&costs, config.PPC, h, 1))
		}
	}
	if sum == 0 {
		b.Fatal("zero occupancy")
	}
}

// benchFigure runs one figure generator at SizeTest.
func benchFigure(b *testing.B, f func(*exp.Suite) (*exp.FigureResult, error), penaltyApp string) {
	b.Helper()
	var fig *exp.FigureResult
	for i := 0; i < b.N; i++ {
		s := exp.NewSuite(workload.SizeTest)
		var err error
		fig, err = f(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	if penaltyApp != "" {
		b.ReportMetric(100*fig.PPPenalty(penaltyApp), "PP-penalty-%")
	}
}

// BenchmarkFigure6Base regenerates the base-configuration architecture
// comparison (reduced sizes).
func BenchmarkFigure6Base(b *testing.B) {
	benchFigure(b, (*exp.Suite).Figure6, "ocean")
}

// BenchmarkFigure7SmallLines regenerates the 32-byte-line experiment.
func BenchmarkFigure7SmallLines(b *testing.B) {
	benchFigure(b, (*exp.Suite).Figure7, "fft")
}

// BenchmarkFigure8SlowNet regenerates the 1-microsecond-network experiment.
func BenchmarkFigure8SlowNet(b *testing.B) {
	benchFigure(b, (*exp.Suite).Figure8, "ocean")
}

// BenchmarkFigure9DataSize regenerates the data-size sensitivity runs.
func BenchmarkFigure9DataSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSuite(workload.SizeTest)
		if _, err := s.Figure9(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure10ProcsPerNode regenerates the processors-per-node sweep.
func BenchmarkFigure10ProcsPerNode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSuite(workload.SizeTest)
		if _, err := s.Figure10(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6Stats regenerates the communication-statistics table and
// reports the Ocean occupancy ratio (the paper's ~2.5 observation).
func BenchmarkTable6Stats(b *testing.B) {
	var rows []exp.Table6Row
	for i := 0; i < b.N; i++ {
		s := exp.NewSuite(workload.SizeTest)
		var err error
		rows, err = s.Table6()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.App == "Ocean" {
			b.ReportMetric(r.OccupancyRatio, "PPC/HWC-occupancy")
		}
	}
}

// BenchmarkTable7TwoEngine regenerates the two-engine statistics.
func BenchmarkTable7TwoEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSuite(workload.SizeTest)
		if _, err := s.Table7(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure11Saturation regenerates the arrival-rate curves.
func BenchmarkFigure11Saturation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSuite(workload.SizeTest)
		if _, err := s.Figure11(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure12PenaltyCurve regenerates the penalty-vs-RCCPI curve.
func BenchmarkFigure12PenaltyCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSuite(workload.SizeTest)
		if _, err := s.Figure12(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictionMethodology runs the paper's Section 3.3 pipeline
// (PRAM estimates + calibration + interpolation) at reduced sizes.
func BenchmarkPredictionMethodology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSuite(workload.SizeTest)
		res, err := s.Prediction()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 8 {
			b.Fatal("missing prediction rows")
		}
	}
}

// BenchmarkExtensionsSection5 runs the engine-scaling and accelerated-PP
// studies at reduced sizes.
func BenchmarkExtensionsSection5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSuite(workload.SizeTest)
		if _, err := s.Extensions("radix"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPRAMEstimator measures the functional estimator's speed on one
// workload (it is the fast path of the prediction methodology).
func BenchmarkPRAMEstimator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := config.Base()
		cfg.Nodes, cfg.ProcsPerNode = 4, 2
		m, err := machine.New(cfg, "ocean")
		if err != nil {
			b.Fatal(err)
		}
		w, err := workload.New("ocean", workload.SizeTest, m.NProcs())
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Setup(m); err != nil {
			b.Fatal(err)
		}
		est := pram.New(&m.Cfg, m.Space)
		if err := est.Run(w.Body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetailedSimulator measures the detailed simulator speed on
// the same workload for comparison with the PRAM estimator.
func BenchmarkDetailedSimulator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := config.Base()
		cfg.Nodes, cfg.ProcsPerNode = 4, 2
		cfg.SimLimit = 10_000_000_000
		m, err := machine.New(cfg, "ocean")
		if err != nil {
			b.Fatal(err)
		}
		w, err := workload.New("ocean", workload.SizeTest, m.NProcs())
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Setup(m); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(w.Body); err != nil {
			b.Fatal(err)
		}
	}
}
