// Command ccchaos runs workload kernels under seeded fault-injection
// schedules on the robust machine configuration and checks that every run
// recovers: the kernel completes, its result verifies, the network drains,
// and the coherence invariants hold on the quiesced machine. Each schedule
// is generated deterministically from its seed, so any failure is
// reproducible from the printed (app, seed) pair alone.
//
// Per app it first executes one fault-free pilot run to size the schedule
// (message count and time horizon), then N chaos runs with seeds base,
// base+1, ... base+N-1. Failures are classified by the stall watchdog
// (deadlock / nack-storm / livelock / starvation) and printed with the
// full schedule for replay.
//
// Usage:
//
//	ccchaos -app fft -schedules 50
//	ccchaos -app all -size test -nodes 4 -ppn 2 -schedules 25
//	ccchaos -app radix -schedules 200 -seed 1000 -json out/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ccnuma/internal/config"
	"ccnuma/internal/fault"
	"ccnuma/internal/interconnect"
	"ccnuma/internal/machine"
	"ccnuma/internal/obs"
	"ccnuma/internal/sim"
	"ccnuma/internal/stats"
	"ccnuma/internal/workload"
)

func main() {
	app := flag.String("app", "all", fmt.Sprintf("application, or \"all\" for the paper's eight: %v", workload.PaperApps))
	arch := flag.String("arch", "HWC", "controller architecture: HWC, PPC, PPCA, 2HWC, 2PPC, 2PPCA")
	nodes := flag.Int("nodes", 4, "SMP nodes")
	ppn := flag.Int("ppn", 2, "processors per node")
	sizeFlag := flag.String("size", "test", "problem size: test, base, large")
	schedules := flag.Int("schedules", 25, "fault schedules per application")
	first := flag.Int("first", 0, "index of the first schedule (repro: -first N -schedules 1 replays exactly schedule N)")
	events := flag.Int("events", 0, "faults per schedule (0 = scale with the machine: 2 + nodes)")
	seed := flag.Int64("seed", 1, "base seed; schedule s runs under seed base+s")
	jsonDir := flag.String("json", "", "write one run artifact per app (ccchaos-<app>.json) into this directory")
	quiet := flag.Bool("q", false, "suppress per-schedule progress output")
	flag.Parse()

	cfg := config.Base()
	var err error
	cfg, err = cfg.WithArch(*arch)
	if err != nil {
		fatal(err)
	}
	cfg.Nodes = *nodes
	cfg.ProcsPerNode = *ppn
	cfg.SimLimit = 50_000_000_000
	cfg = cfg.WithRobustness()
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	var size workload.SizeClass
	switch *sizeFlag {
	case "test":
		size = workload.SizeTest
	case "base":
		size = workload.SizeBase
	case "large":
		size = workload.SizeLarge
	default:
		fatal(fmt.Errorf("unknown size %q", *sizeFlag))
	}

	apps := []string{*app}
	if *app == "all" {
		apps = workload.PaperApps
	}
	nEvents := *events
	if nEvents <= 0 {
		nEvents = 2 + cfg.Nodes
	}

	fmt.Printf("ccchaos: %s on %s (%d nodes x %d procs), %d schedules/app, %d faults/schedule, base seed %d\n",
		strings.Join(apps, ","), cfg.ArchName(), cfg.Nodes, cfg.ProcsPerNode, *schedules, nEvents, *seed)

	failures := 0
	for _, name := range apps {
		n, err := runApp(cfg, name, size, *sizeFlag, *first, *schedules, nEvents, *seed, *jsonDir, *quiet)
		if err != nil {
			fatal(err)
		}
		failures += n
	}
	if failures > 0 {
		fmt.Printf("FAIL: %d/%d chaos runs did not recover\n", failures, *schedules*len(apps))
		os.Exit(1)
	}
	fmt.Printf("PASS: %d chaos runs, all recovered\n", *schedules*len(apps))
}

// runApp pilots one app fault-free, then runs the schedule sweep. It
// returns the number of failed schedules.
func runApp(cfg config.Config, name string, size workload.SizeClass, sizeName string,
	first, schedules, nEvents int, baseSeed int64, jsonDir string, quiet bool) (int, error) {

	// Pilot: fault-free run on the same robust configuration, counting the
	// network messages so the schedule's fault coordinates land inside the
	// run instead of past its end.
	pilotMsgs, pilotExec, err := pilot(cfg, name, size, baseSeed)
	if err != nil {
		return 0, fmt.Errorf("%s: fault-free pilot failed (nothing injected): %w", name, err)
	}
	if !quiet {
		fmt.Printf("%-10s pilot: %d messages, %d cycles\n", name, pilotMsgs, pilotExec)
	}

	params := fault.Params{
		Events:   nEvents,
		Horizon:  pilotExec,
		Messages: pilotMsgs,
		Nodes:    cfg.Nodes,
		Engines:  cfg.EngineCount(),
	}

	failed := 0
	applied := map[string]uint64{}
	var lastRun *stats.Run
	for s := first; s < first+schedules; s++ {
		seed := baseSeed + int64(s)
		sch := fault.Generate(seed, params)
		r, inj, err := runSchedule(cfg, name, size, baseSeed, sch)
		if err != nil {
			failed++
			fmt.Printf("%-10s seed=%d FAILED: %v\n", name, seed, err)
			fmt.Printf("  repro: ccchaos -app %s -arch %s -nodes %d -ppn %d -size %s -seed %d -first %d -schedules 1 -events %d\n",
				name, cfg.ArchName(), cfg.Nodes, cfg.ProcsPerNode, sizeName, baseSeed, s, nEvents)
			fmt.Printf("  schedule: %s\n", sch)
			continue
		}
		for k, v := range inj.AppliedByKind() {
			applied[k] += v
		}
		lastRun = r
		if !quiet {
			ns, nr, rt, to, ba, sd := r.RecoveryTotals()
			fmt.Printf("%-10s seed=%d ok: %d/%d faults applied, exec=%d cycles, nacks=%d/%d retries=%d timeouts=%d busAborts=%d strayDrops=%d\n",
				name, seed, inj.AppliedTotal(), len(sch.Events), r.ExecTime, ns, nr, rt, to, ba, sd)
		}
	}

	fmt.Printf("%-10s %d/%d schedules recovered; faults applied: %s\n",
		name, schedules-failed, schedules, renderApplied(applied))

	if jsonDir != "" && lastRun != nil {
		art := obs.NewArtifact("ccchaos", sizeName, &cfg, lastRun)
		art.Seed = baseSeed
		art.Recovery = obs.NewRecoveryDoc(&cfg, lastRun, applied)
		path := filepath.Join(jsonDir, "ccchaos-"+name+".json")
		if err := art.WriteFile(path); err != nil {
			return failed, err
		}
		if !quiet {
			fmt.Printf("%-10s artifact: %s\n", name, path)
		}
	}
	return failed, nil
}

// pilot runs the kernel fault-free on the robust configuration and returns
// its network message count and execution time.
func pilot(cfg config.Config, name string, size workload.SizeClass, seed int64) (uint64, sim.Time, error) {
	m, err := machine.New(cfg, name)
	if err != nil {
		return 0, 0, err
	}
	var msgs uint64
	m.Net.Fault = func(src, dst int, payload interface{}) interconnect.Decision {
		msgs++
		return interconnect.Decision{}
	}
	r, err := runKernel(m, name, size, seed)
	if err != nil {
		return 0, 0, err
	}
	return msgs, r.ExecTime, nil
}

// runSchedule executes one kernel run with the schedule injected and all
// recovery checks applied: completion, result verification, network drain.
func runSchedule(cfg config.Config, name string, size workload.SizeClass,
	seed int64, sch *fault.Schedule) (r *stats.Run, inj *fault.Injector, err error) {

	// The recovery machinery is deliberately fail-stop (e.g. an exhausted
	// retry budget panics); one schedule's failure must not take down the
	// rest of the sweep.
	defer func() {
		if p := recover(); p != nil {
			r, err = nil, fmt.Errorf("panic: %v", p)
		}
	}()
	m, err := machine.New(cfg, name)
	if err != nil {
		return nil, nil, err
	}
	inj = m.InjectFaults(sch)
	r, err = runKernel(m, name, size, seed)
	if err != nil {
		return nil, inj, err
	}
	if inflight := m.Net.InFlight(); inflight != 0 {
		return nil, inj, fmt.Errorf("network did not drain: %d frames still in flight", inflight)
	}
	for n := 0; n < cfg.Nodes; n++ {
		if q := m.Net.OutQueued(n); q != 0 {
			return nil, inj, fmt.Errorf("network did not drain: node %d NI still queues %d frames", n, q)
		}
	}
	return r, inj, nil
}

// runKernel builds the seeded workload, runs it, and verifies the result.
// Machine.Run itself enforces processor completion, zero transient protocol
// ops, and the global coherence invariants on the quiesced machine.
func runKernel(m *machine.Machine, name string, size workload.SizeClass, seed int64) (*stats.Run, error) {
	w, err := workload.NewSeeded(name, size, m.NProcs(), seed)
	if err != nil {
		return nil, err
	}
	if err := w.Setup(m); err != nil {
		return nil, err
	}
	r, err := m.Run(w.Body)
	if err != nil {
		return nil, err
	}
	if err := w.Verify(); err != nil {
		return nil, fmt.Errorf("verification failed: %w", err)
	}
	return r, nil
}

func renderApplied(applied map[string]uint64) string {
	if len(applied) == 0 {
		return "none"
	}
	kinds := make([]string, 0, len(applied))
	for k := range applied {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s=%d", k, applied[k]))
	}
	return strings.Join(parts, " ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccchaos:", err)
	os.Exit(1)
}
