// Command ccchaos runs workload kernels under seeded fault-injection
// schedules on the robust machine configuration and checks that every run
// recovers (see internal/chaos). The campaign is a ccnuma-scenario/v1
// faults section — flags build one implicitly, -spec loads one from a
// file. Each schedule is generated deterministically from its seed, so any
// failure is reproducible from the printed (app, seed) pair alone;
// schedules run concurrently under -jobs with output identical to a
// serial run.
//
// Usage:
//
//	ccchaos -app fft -schedules 50
//	ccchaos -app all -size test -nodes 4 -ppn 2 -schedules 25 -jobs 4
//	ccchaos -app radix -schedules 200 -seed 1000 -json out/
//	ccchaos -spec examples/scenarios/base.json -schedules 10
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ccnuma/internal/chaos"
	"ccnuma/internal/scenario"
	"ccnuma/internal/workload"
)

func main() {
	flag.String("app", "all", fmt.Sprintf("application, or \"all\" for the paper's eight: %v", workload.PaperApps))
	flag.String("arch", "HWC", "controller architecture: HWC, PPC, PPCA, 2HWC, 2PPC, 2PPCA")
	flag.Int("nodes", 4, "SMP nodes")
	flag.Int("ppn", 2, "processors per node")
	flag.String("size", "test", "problem size: test, base, large")
	flag.Int("schedules", 25, "fault schedules per application")
	flag.Int("first", 0, "index of the first schedule (repro: -first N -schedules 1 replays exactly schedule N)")
	flag.Int("events", 0, "faults per schedule (0 = scale with the machine: 2 + nodes)")
	flag.Int64("seed", 1, "base seed; schedule s runs under seed base+s")
	flag.Int("jobs", 0, "schedules to run concurrently (0 = GOMAXPROCS; 1 = serial; output is identical for any value)")
	flag.Int("shards", 1, "event-engine shards inside each simulation (results are identical for any value)")
	specPath := flag.String("spec", "", "load a ccnuma-scenario/v1 file; explicit flags override its fields")
	printSpec := flag.Bool("print-spec", false, "print the resolved canonical scenario and exit without simulating")
	jsonDir := flag.String("json", "", "write one run artifact per app (ccchaos-<app>.json) into this directory")
	quiet := flag.Bool("q", false, "suppress per-schedule progress output")
	flag.Parse()

	// ccchaos's -seed seeds the fault schedules (and through the campaign
	// the kernels), not the generic workload seed.
	overrides := map[string]scenario.FlagFunc{
		"seed": func(s *scenario.Spec, value string) error {
			v, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				return err
			}
			s.EnsureFaults().BaseSeed = v
			return nil
		},
	}
	spec, err := scenario.FromFlags(flag.CommandLine, *specPath, "", overrides)
	if err != nil {
		fatal(err)
	}
	faults := spec.EnsureFaults()
	// Chaos always runs on a robust machine: a spec without the recovery
	// knobs gets the standard robustness preset, exactly as the flag path
	// always has.
	if !spec.Machine.Robust() {
		spec.Machine = spec.Machine.WithRobustness()
	}
	canon, err := spec.Canonical()
	if err != nil {
		fatal(err)
	}
	if *printSpec {
		os.Stdout.Write(canon)
		return
	}
	fp, err := spec.Fingerprint()
	if err != nil {
		fatal(err)
	}

	cfg := spec.Machine
	size, err := spec.Size()
	if err != nil {
		fatal(err)
	}

	apps := []string{spec.Workload.App}
	if spec.Workload.App == "all" {
		apps = workload.PaperApps
	}
	nEvents := faults.Events
	if nEvents <= 0 {
		nEvents = 2 + cfg.Nodes
	}

	fmt.Printf("ccchaos: %s on %s (%d nodes x %d procs), %d schedules/app, %d faults/schedule, base seed %d\n",
		strings.Join(apps, ","), cfg.ArchName(), cfg.Nodes, cfg.ProcsPerNode, faults.Schedules, nEvents, faults.BaseSeed)

	c := &chaos.Campaign{
		Cfg:                 cfg,
		Size:                size,
		SizeName:            spec.Workload.Size,
		First:               faults.First,
		Schedules:           faults.Schedules,
		Events:              nEvents,
		BaseSeed:            faults.BaseSeed,
		Jobs:                spec.Jobs,
		JSONDir:             *jsonDir,
		ScenarioJSON:        canon,
		ScenarioFingerprint: fp,
		Quiet:               *quiet,
		Out:                 os.Stdout,
	}
	failures := 0
	for _, name := range apps {
		n, err := c.RunApp(name)
		if err != nil {
			fatal(err)
		}
		failures += n
	}
	if failures > 0 {
		fmt.Printf("FAIL: %d/%d chaos runs did not recover\n", failures, faults.Schedules*len(apps))
		os.Exit(1)
	}
	fmt.Printf("PASS: %d chaos runs, all recovered\n", faults.Schedules*len(apps))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccchaos:", err)
	os.Exit(1)
}
