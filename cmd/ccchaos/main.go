// Command ccchaos runs workload kernels under seeded fault-injection
// schedules on the robust machine configuration and checks that every run
// recovers (see internal/chaos). Each schedule is generated
// deterministically from its seed, so any failure is reproducible from the
// printed (app, seed) pair alone; schedules run concurrently under -jobs
// with output identical to a serial run.
//
// Usage:
//
//	ccchaos -app fft -schedules 50
//	ccchaos -app all -size test -nodes 4 -ppn 2 -schedules 25 -jobs 4
//	ccchaos -app radix -schedules 200 -seed 1000 -json out/
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ccnuma/internal/chaos"
	"ccnuma/internal/config"
	"ccnuma/internal/workload"
)

func main() {
	app := flag.String("app", "all", fmt.Sprintf("application, or \"all\" for the paper's eight: %v", workload.PaperApps))
	arch := flag.String("arch", "HWC", "controller architecture: HWC, PPC, PPCA, 2HWC, 2PPC, 2PPCA")
	nodes := flag.Int("nodes", 4, "SMP nodes")
	ppn := flag.Int("ppn", 2, "processors per node")
	sizeFlag := flag.String("size", "test", "problem size: test, base, large")
	schedules := flag.Int("schedules", 25, "fault schedules per application")
	first := flag.Int("first", 0, "index of the first schedule (repro: -first N -schedules 1 replays exactly schedule N)")
	events := flag.Int("events", 0, "faults per schedule (0 = scale with the machine: 2 + nodes)")
	seed := flag.Int64("seed", 1, "base seed; schedule s runs under seed base+s")
	jsonDir := flag.String("json", "", "write one run artifact per app (ccchaos-<app>.json) into this directory")
	jobs := flag.Int("jobs", 0, "schedules to run concurrently (0 = GOMAXPROCS; 1 = serial; output is identical for any value)")
	quiet := flag.Bool("q", false, "suppress per-schedule progress output")
	flag.Parse()

	cfg := config.Base()
	var err error
	cfg, err = cfg.WithArch(*arch)
	if err != nil {
		fatal(err)
	}
	cfg.Nodes = *nodes
	cfg.ProcsPerNode = *ppn
	cfg.SimLimit = 50_000_000_000
	cfg = cfg.WithRobustness()
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	var size workload.SizeClass
	switch *sizeFlag {
	case "test":
		size = workload.SizeTest
	case "base":
		size = workload.SizeBase
	case "large":
		size = workload.SizeLarge
	default:
		fatal(fmt.Errorf("unknown size %q", *sizeFlag))
	}

	apps := []string{*app}
	if *app == "all" {
		apps = workload.PaperApps
	}
	nEvents := *events
	if nEvents <= 0 {
		nEvents = 2 + cfg.Nodes
	}

	fmt.Printf("ccchaos: %s on %s (%d nodes x %d procs), %d schedules/app, %d faults/schedule, base seed %d\n",
		strings.Join(apps, ","), cfg.ArchName(), cfg.Nodes, cfg.ProcsPerNode, *schedules, nEvents, *seed)

	c := &chaos.Campaign{
		Cfg:       cfg,
		Size:      size,
		SizeName:  *sizeFlag,
		First:     *first,
		Schedules: *schedules,
		Events:    nEvents,
		BaseSeed:  *seed,
		Jobs:      *jobs,
		JSONDir:   *jsonDir,
		Quiet:     *quiet,
		Out:       os.Stdout,
	}
	failures := 0
	for _, name := range apps {
		n, err := c.RunApp(name)
		if err != nil {
			fatal(err)
		}
		failures += n
	}
	if failures > 0 {
		fmt.Printf("FAIL: %d/%d chaos runs did not recover\n", failures, *schedules*len(apps))
		os.Exit(1)
	}
	fmt.Printf("PASS: %d chaos runs, all recovered\n", *schedules*len(apps))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccchaos:", err)
	os.Exit(1)
}
