// Command ccverify model-checks the coherence protocol by driving the real
// simulator stack over a tiny machine and exhaustively exploring the
// reachable quiescent states (phase A), then racing operation pairs across
// the transient windows between them (phase B). It reports the explored
// state count and exits non-zero if any invariant is violated; every
// violation comes with a deterministic replay path.
//
// Usage:
//
//	ccverify -nodes 2 -procs 1
//	ccverify -nodes 3 -procs 1 -states 10000 -races 20000
//	ccverify -nodes 2 -procs 1 -json
//	ccverify -spec examples/scenarios/base.json -states 10000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ccnuma/internal/scenario"
	"ccnuma/internal/verify"
)

func main() {
	flag.Int("nodes", 2, "SMP nodes in the checked machine")
	flag.Int("procs", 1, "processors per node")
	states := flag.Int("states", 0, "phase-A state budget (0 = default)")
	races := flag.Int("races", 0, "phase-B race budget (0 = default, -1 skips phase B)")
	offsets := flag.Int("offsets", 0, "race injection offsets per pair (0 = default, -1 = every event boundary)")
	maxViol := flag.Int("maxviol", 0, "stop after this many violations (0 = default)")
	sweepFaults := flag.Bool("sweep-faults", false, "instead of the state-space walk, replay the canonical path once per (message, drop/dup) pair with one fault injected on the robust configuration and assert recovery")
	sweepRuns := flag.Int("sweep-runs", 0, "fault-sweep replay budget (0 = default; larger grids are stride-sampled)")
	specPath := flag.String("spec", "", "take the checked machine's geometry from a ccnuma-scenario/v1 file; explicit flags override")
	printSpec := flag.Bool("print-spec", false, "print the resolved canonical scenario and exit without checking")
	jsonOut := flag.Bool("json", false, "emit the result as JSON on stdout")
	flag.Int("jobs", 0, "replays to run concurrently (0 = GOMAXPROCS; 1 = serial; the result is identical for any value)")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	spec, err := scenario.FromFlags(flag.CommandLine, *specPath, "", nil)
	if err != nil {
		fatal(err)
	}
	if *printSpec {
		canon, err := spec.Canonical()
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(canon)
		return
	}
	if err := spec.Validate(); err != nil {
		fatal(err)
	}

	vc := verify.Config{
		Nodes:          spec.Machine.Nodes,
		ProcsPerNode:   spec.Machine.ProcsPerNode,
		MaxStates:      *states,
		MaxRaces:       *races,
		MaxRaceOffsets: *offsets,
		MaxViolations:  *maxViol,
		Jobs:           spec.Jobs,
	}
	if !*quiet && !*jsonOut {
		vc.Log = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	if *sweepFaults {
		runSweep(vc, *sweepRuns, *jsonOut)
		return
	}

	res, err := verify.Run(vc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccverify: %v\n", err)
		os.Exit(2)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "ccverify: %v\n", err)
			os.Exit(2)
		}
	} else {
		fixpoint := "fixpoint reached"
		switch {
		case res.Truncated:
			fixpoint = "state budget exhausted before closure"
		case res.RacesTruncated:
			fixpoint = "fixpoint reached, race budget exhausted"
		}
		fmt.Printf("ccverify: %dx%d machine: %d states, %d edges, %d races (%s)\n",
			vc.Nodes, vc.ProcsPerNode, res.States, res.Edges, res.Races, fixpoint)
		for i := range res.Violations {
			fmt.Printf("violation: %s\n", res.Violations[i].String())
		}
	}
	if !res.OK() {
		fmt.Fprintf(os.Stderr, "ccverify: %d violation(s)\n", len(res.Violations))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccverify:", err)
	os.Exit(2)
}

// runSweep executes the single-fault recovery sweep and exits non-zero on
// any unrecovered fault.
func runSweep(vc verify.Config, maxRuns int, jsonOut bool) {
	res, err := verify.SweepSingleFaults(vc, maxRuns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccverify: %v\n", err)
		os.Exit(2)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "ccverify: %v\n", err)
			os.Exit(2)
		}
	} else {
		note := ""
		if res.Truncated {
			note = " (grid stride-sampled)"
		}
		fmt.Printf("ccverify: fault sweep: %d messages, %d fault-injected replays%s\n",
			res.Messages, res.Runs, note)
		for i := range res.Violations {
			fmt.Printf("violation: %s\n", res.Violations[i].String())
		}
	}
	if !res.OK() {
		fmt.Fprintf(os.Stderr, "ccverify: %d unrecovered fault(s)\n", len(res.Violations))
		os.Exit(1)
	}
}
