// Command cctrace runs a simulation with the protocol event trace enabled
// and prints every controller dispatch and message send — optionally
// filtered to one cache line — plus the cache-state transitions of that
// line. It is the tool that found this repository's protocol races; it is
// equally useful for studying handler interleavings.
//
// Usage:
//
//	cctrace -app ocean -arch PPC -size test                 # full trace
//	cctrace -app radix -line 0x3200 -max 200                # one line
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ccnuma/internal/config"
	"ccnuma/internal/core"
	"ccnuma/internal/cpu"
	"ccnuma/internal/machine"
	"ccnuma/internal/workload"
)

// lineFilter passes through only trace lines mentioning the wanted line.
type lineFilter struct {
	out  *bufio.Writer
	want string // "" = everything
	kept int
	max  int
}

func (f *lineFilter) Write(p []byte) (int, error) {
	s := string(p)
	if f.want == "" || strings.Contains(s, f.want) {
		if f.max == 0 || f.kept < f.max {
			f.out.WriteString(s)
			f.kept++
		}
	}
	return len(p), nil
}

func main() {
	app := flag.String("app", "ocean", fmt.Sprintf("application: %v", workload.Names()))
	arch := flag.String("arch", "HWC", "controller architecture")
	nodes := flag.Int("nodes", 4, "SMP nodes")
	ppn := flag.Int("ppn", 2, "processors per node")
	sizeFlag := flag.String("size", "test", "problem size: test, base, large")
	lineHex := flag.String("line", "", "only trace this cache line (hex, e.g. 0x3200)")
	maxLines := flag.Int("max", 0, "stop printing after this many trace lines (0 = unlimited)")
	flag.Parse()

	cfg := config.Base()
	cfg, err := cfg.WithArch(*arch)
	if err != nil {
		fatal(err)
	}
	cfg.Nodes, cfg.ProcsPerNode = *nodes, *ppn
	cfg.SimLimit = 50_000_000_000

	var size workload.SizeClass
	switch *sizeFlag {
	case "test":
		size = workload.SizeTest
	case "base":
		size = workload.SizeBase
	case "large":
		size = workload.SizeLarge
	default:
		fatal(fmt.Errorf("unknown size %q", *sizeFlag))
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	filter := &lineFilter{out: out, max: *maxLines}
	if *lineHex != "" {
		v, err := strconv.ParseUint(strings.TrimPrefix(*lineHex, "0x"), 16, 64)
		if err != nil {
			fatal(fmt.Errorf("bad -line %q: %w", *lineHex, err))
		}
		filter.want = fmt.Sprintf("%#x", v)
		cpu.DebugLine = v
	}
	core.Debug = filter
	defer func() { core.Debug = nil; cpu.DebugLine = 0 }()

	m, err := machine.New(cfg, *app)
	if err != nil {
		fatal(err)
	}
	w, err := workload.New(*app, size, m.NProcs())
	if err != nil {
		fatal(err)
	}
	if err := w.Setup(m); err != nil {
		fatal(err)
	}
	r, err := m.Run(w.Body)
	if err != nil {
		out.Flush()
		fatal(err)
	}
	out.Flush()
	fmt.Fprintf(os.Stderr, "\n%s/%s: %d cycles, %d protocol events traced\n",
		*app, cfg.ArchName(), r.ExecTime, filter.kept)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cctrace:", err)
	os.Exit(1)
}
