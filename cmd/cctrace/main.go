// Command cctrace runs a simulation with the typed event trace enabled and
// prints every controller dispatch, queue movement, bus strobe, network
// send/receive, directory access, and cache-state transition — optionally
// filtered to one cache line. It is the tool that found this repository's
// protocol races; it is equally useful for studying handler interleavings.
//
// The filter compares the parsed line-address field of each structured
// event, so -line 0x3200 matches exactly that line (and not 0x32000, as the
// old substring filter did).
//
// Usage:
//
//	cctrace -app ocean -arch PPC -size test                 # full trace
//	cctrace -app radix -line 0x3200 -max 200                # one line
//	cctrace -app fft -chrome trace.json                     # Perfetto trace
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ccnuma/internal/config"
	"ccnuma/internal/machine"
	"ccnuma/internal/obs"
	"ccnuma/internal/workload"
)

func main() {
	app := flag.String("app", "ocean", fmt.Sprintf("application: %v", workload.Names()))
	arch := flag.String("arch", "HWC", "controller architecture")
	nodes := flag.Int("nodes", 4, "SMP nodes")
	ppn := flag.Int("ppn", 2, "processors per node")
	sizeFlag := flag.String("size", "test", "problem size: test, base, large")
	lineHex := flag.String("line", "", "only trace this cache line (hex, e.g. 0x3200)")
	txnHex := flag.String("txn", "", "print the causal span history of one transaction (hex ID from span events; implies attribution)")
	maxLines := flag.Int("max", 0, "stop printing after this many trace lines (0 = unlimited)")
	chromePath := flag.String("chrome", "", "also write Chrome trace_event JSON (Perfetto) to this file")
	flag.Parse()

	cfg := config.Base()
	cfg, err := cfg.WithArch(*arch)
	if err != nil {
		fatal(err)
	}
	cfg.Nodes, cfg.ProcsPerNode = *nodes, *ppn
	cfg.SimLimit = 50_000_000_000

	var size workload.SizeClass
	switch *sizeFlag {
	case "test":
		size = workload.SizeTest
	case "base":
		size = workload.SizeBase
	case "large":
		size = workload.SizeLarge
	default:
		fatal(fmt.Errorf("unknown size %q", *sizeFlag))
	}

	var wantLine uint64
	filtered := false
	if *lineHex != "" {
		v, err := strconv.ParseUint(strings.TrimPrefix(*lineHex, "0x"), 16, 64)
		if err != nil {
			fatal(fmt.Errorf("bad -line %q: %w", *lineHex, err))
		}
		wantLine, filtered = v, true
	}
	var wantTxn uint64
	txnFiltered := false
	if *txnHex != "" {
		v, err := strconv.ParseUint(strings.TrimPrefix(*txnHex, "0x"), 16, 64)
		if err != nil {
			fatal(fmt.Errorf("bad -txn %q: %w", *txnHex, err))
		}
		wantTxn, txnFiltered = v, true
		cfg.Attribution = true // span events only exist with the tracker on
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	kept := 0
	opts := []obs.Option{obs.WithSink(func(ev *obs.Event) {
		if txnFiltered && (ev.Kind != obs.EvSpan || uint64(ev.A) != wantTxn) {
			return
		}
		if filtered && ev.Line != wantLine {
			return
		}
		if *maxLines == 0 || kept < *maxLines {
			out.WriteString(ev.Text())
			out.WriteByte('\n')
			kept++
		}
	})}
	if *chromePath == "" {
		opts = append(opts, obs.WithBuffer(0)) // stream-only: no ring needed
	}
	tr := obs.NewTracer(opts...)

	m, err := machine.NewTraced(cfg, *app, tr)
	if err != nil {
		fatal(err)
	}
	w, err := workload.New(*app, size, m.NProcs())
	if err != nil {
		fatal(err)
	}
	if err := w.Setup(m); err != nil {
		fatal(err)
	}
	r, err := m.Run(w.Body)
	if err != nil {
		out.Flush()
		fatal(err)
	}
	out.Flush()
	if *chromePath != "" {
		if err := obs.WriteChromeTraceFile(*chromePath, tr.Events()); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "chrome trace: %s (%d events buffered, %d dropped)\n",
			*chromePath, tr.Recorded(), tr.Dropped())
	}
	fmt.Fprintf(os.Stderr, "\n%s/%s: %d cycles, %d events printed\n",
		*app, cfg.ArchName(), r.ExecTime, kept)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cctrace:", err)
	os.Exit(1)
}
