// Command ccmodel owns the statically extracted protocol model: it
// regenerates the committed ccnuma-model/v1 artifact from the
// implementation, checks the artifact for staleness, explores the
// abstract nodes × lines machine with the explicit-state checker
// (hash-compacted visited set, per-line partial-order reduction), and
// replays concrete simulator runs through the model's transition table.
//
// Usage:
//
//	ccmodel -write             regenerate ccnuma-model.json
//	ccmodel -stale             fail (exit 1) if the artifact is stale
//	ccmodel -check -nodes 4 -robust
//	ccmodel -conform           replay concrete runs through the model
//
// Exit status is 1 on violations, conformance failures, or a stale
// artifact, 2 on errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"ccnuma/internal/extract"
	"ccnuma/internal/model"
)

func main() {
	write := flag.Bool("write", false, "re-extract the model and write "+extract.ArtifactPath)
	stale := flag.Bool("stale", false, "re-extract and compare against the committed artifact")
	check := flag.Bool("check", false, "explore the abstract machine and check invariants")
	conform := flag.Bool("conform", false, "replay concrete simulator runs through the model")
	dir := flag.String("dir", ".", "module root (where go.mod and the artifact live)")
	nodes := flag.Int("nodes", 4, "abstract machine nodes (with -check)")
	lines := flag.Int("lines", 1, "abstract machine lines (with -check)")
	robust := flag.Bool("robust", false, "enable finite-buffer NACK/backoff edges (with -check)")
	por := flag.Bool("por", false, "enable the partial-order reduction (with -check)")
	maxStates := flag.Int("max-states", 0, "state bound, 0 = default (with -check)")
	flag.Parse()

	fatal := func(err error) {
		fmt.Fprintf(os.Stderr, "ccmodel: %v\n", err)
		os.Exit(2)
	}
	if !*write && !*stale && !*check && !*conform {
		flag.Usage()
		os.Exit(2)
	}

	if *write {
		m, err := extract.Extract(*dir)
		if err != nil {
			fatal(err)
		}
		if err := m.Write(*dir); err != nil {
			fatal(err)
		}
		fmt.Printf("ccmodel: wrote %s (fingerprint %s, %d rules, %d handlers, %d messages)\n",
			extract.ArtifactPath, m.Fingerprint, len(m.Rules), len(m.Handlers), len(m.Messages))
	}

	if *stale {
		reason, err := extract.CheckStale(*dir)
		if err != nil {
			fatal(err)
		}
		if reason != "" {
			fmt.Fprintf(os.Stderr, "ccmodel: %s\n", reason)
			os.Exit(1)
		}
		fmt.Println("ccmodel: committed model is fresh")
	}

	if *check || *conform {
		m, _, err := extract.LoadArtifact(*dir)
		if err != nil {
			if os.IsNotExist(err) {
				fmt.Fprintf(os.Stderr, "ccmodel: no committed %s; run `ccmodel -write`\n", extract.ArtifactPath)
				os.Exit(1)
			}
			fatal(err)
		}
		ix := m.Index()
		if *check {
			res, err := model.Check(model.Config{
				Nodes: *nodes, Lines: *lines, Robust: *robust, POR: *por,
				MaxStates: *maxStates,
			}, ix)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("ccmodel: %s\n", res)
			if len(res.Violations) > 0 {
				os.Exit(1)
			}
		}
		if *conform {
			c, err := model.RunConformance(ix)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("ccmodel: conformance — %d dispatches, %d sends validated, %d failure(s)\n",
				c.Dispatches, c.Sends, len(c.Failures))
			for _, f := range c.Failures {
				fmt.Fprintf(os.Stderr, "ccmodel: %s\n", f)
			}
			if len(c.Failures) > 0 {
				os.Exit(1)
			}
		}
	}
}
