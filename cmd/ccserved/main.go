// Command ccserved is the crash-safe experiment service: an HTTP daemon
// that executes submitted ccnuma scenarios and sweeps, memoizes every
// cell artifact in a content-addressed store, journals sweep acceptance
// so a kill at any instant is resumed on restart, and bounds admission so
// overload degrades into 429s instead of an unbounded queue.
//
// Endpoints: POST /v1/submit, GET /v1/artifact/{fp}, GET /healthz,
// GET /readyz, GET /statusz. Submit with cmd/ccsubmit or plain curl.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ccnuma/internal/serve"
)

func main() {
	cfg := serve.DefaultConfig()
	flag.StringVar(&cfg.Addr, "addr", cfg.Addr, "listen address")
	flag.StringVar(&cfg.StoreDir, "store", cfg.StoreDir, "content-addressed store directory")
	flag.IntVar(&cfg.Jobs, "jobs", cfg.Jobs, "concurrently executing cells per submission")
	flag.IntVar(&cfg.QueueDepth, "queue", cfg.QueueDepth, "admitted-cell bound; beyond it submissions get 429")
	flag.IntVar(&cfg.CellRetries, "cell-retries", cfg.CellRetries, "retries for transiently failing cells")
	flag.DurationVar(&cfg.RetryBackoff, "retry-backoff", cfg.RetryBackoff, "initial backoff between cell retries (doubles)")
	flag.DurationVar(&cfg.DrainTimeout, "drain-timeout", cfg.DrainTimeout, "graceful-shutdown bound")
	flag.Int64Var(&cfg.SampleEvery, "sample-every", 0, "attach an obs sampler at this simulated-cycle interval (0 = off)")
	flag.StringVar(&cfg.ComputeLog, "compute-log", "", "append one line per actually-computed cell (audit trail)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "ccserved: unexpected arguments:", flag.Args())
		os.Exit(2)
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = time.Second
	}
	if err := serve.Run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "ccserved:", err)
		os.Exit(1)
	}
}
