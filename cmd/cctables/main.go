// Command cctables regenerates every table and figure of the paper's
// evaluation section (Tables 1-4, 6, 7 and Figures 6-12).
//
// Usage:
//
//	cctables                 # everything at base problem sizes
//	cctables -only fig6      # one artifact (table1..table7, fig6..fig12)
//	cctables -size test      # quick smoke run at tiny sizes
//	cctables -v              # per-simulation progress
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ccnuma/internal/exp"
	"ccnuma/internal/obs"
	"ccnuma/internal/workload"
)

func main() {
	size := flag.String("size", "base", "problem size class: test or base")
	only := flag.String("only", "", "regenerate one artifact: table1,table2,table3,table4,table6,table7,fig6,fig7,fig8,fig9,fig10,fig11,fig12,ext,placement,predict")
	attribution := flag.Bool("attribution", false, "print only the latency-attribution table (per kernel x architecture, span tracing on)")
	verbose := flag.Bool("v", false, "print per-simulation progress")
	jsonPath := flag.String("json", "", "write one run-artifact document per simulation to this file (JSON array)")
	jobs := flag.Int("jobs", 0, "simulations to run concurrently (0 = GOMAXPROCS; 1 = serial; output is identical for any value)")
	flag.Parse()

	var sc workload.SizeClass
	switch *size {
	case "test":
		sc = workload.SizeTest
	case "base":
		sc = workload.SizeBase
	default:
		fmt.Fprintf(os.Stderr, "unknown size %q (want test or base)\n", *size)
		os.Exit(2)
	}
	s := exp.NewSuite(sc)
	s.Jobs = *jobs
	if *verbose {
		s.Progress = os.Stderr
	}
	s.CollectArtifacts = *jsonPath != ""

	want := func(name string) bool {
		return *only == "" || strings.EqualFold(*only, name)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	if *attribution {
		rows, err := s.Attribution()
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.RenderAttribution(rows))
		if *jsonPath != "" {
			if err := obs.WriteArtifactsFile(*jsonPath, s.Artifacts()); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "artifacts: %s (%d simulations)\n", *jsonPath, len(s.Artifacts()))
		}
		return
	}

	if want("table1") {
		fmt.Println(exp.Table1())
	}
	if want("table2") {
		fmt.Println(exp.Table2())
	}
	if want("table3") {
		t3, err := exp.Table3()
		if err != nil {
			fail(err)
		}
		fmt.Println(t3.Render())
	}
	if want("table4") {
		fmt.Println(exp.Table4())
	}
	if want("fig6") {
		f, err := s.Figure6()
		if err != nil {
			fail(err)
		}
		fmt.Println(f.Render())
	}
	if want("fig7") {
		f, err := s.Figure7()
		if err != nil {
			fail(err)
		}
		fmt.Println(f.Render())
	}
	if want("fig8") {
		f, err := s.Figure8()
		if err != nil {
			fail(err)
		}
		fmt.Println(f.Render())
	}
	if want("fig9") {
		f, err := s.Figure9()
		if err != nil {
			fail(err)
		}
		fmt.Println(f.Render())
	}
	if want("fig10") {
		f, err := s.Figure10()
		if err != nil {
			fail(err)
		}
		fmt.Println(f.Render())
	}
	if want("table6") {
		rows, err := s.Table6()
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.RenderTable6(rows))
	}
	if want("table7") {
		rows, err := s.Table7()
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.RenderTable7(rows))
	}
	if want("fig11") {
		f, err := s.Figure11()
		if err != nil {
			fail(err)
		}
		fmt.Println(f.Render())
	}
	if want("fig12") {
		f, err := s.Figure12()
		if err != nil {
			fail(err)
		}
		fmt.Println(f.Render())
	}
	if want("ext") {
		f, err := s.Extensions()
		if err != nil {
			fail(err)
		}
		fmt.Println(f.Render())
	}
	if want("placement") {
		f, err := s.Placement()
		if err != nil {
			fail(err)
		}
		fmt.Println(f.Render())
	}
	if want("predict") {
		f, err := s.Prediction()
		if err != nil {
			fail(err)
		}
		fmt.Println(f.Render())
	}
	if *jsonPath != "" {
		if err := obs.WriteArtifactsFile(*jsonPath, s.Artifacts()); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "artifacts: %s (%d simulations)\n", *jsonPath, len(s.Artifacts()))
	}
}
