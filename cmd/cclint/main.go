// Command cclint runs the repo's custom static analyses (package lint)
// over the given package patterns. It is built purely on the standard
// library's go/ast and go/types; dependencies are resolved from build-cache
// export data via `go list -deps -export -json`.
//
// Usage:
//
//	cclint ./...
//	cclint -json ./internal/core
//
// Exit status is 1 when findings remain, 2 on loader errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ccnuma/internal/extract"
	"ccnuma/internal/lint"
	"ccnuma/internal/obs"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON on stdout")
	dir := flag.String("dir", ".", "directory to resolve patterns from (must be inside the module)")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cclint: %v\n", err)
		os.Exit(2)
	}
	findings := lint.Check(pkgs)

	// Staleness gate: when the run covers the protocol implementation, the
	// committed ccnuma-model artifact must still match what the extractor
	// derives from it — editing a handler without regenerating the model is
	// a finding like any other.
	for _, p := range pkgs {
		if p.ImportPath != "ccnuma/internal/core" && p.ImportPath != "ccnuma/internal/protocol" {
			continue
		}
		reason, err := extract.CheckStale(*dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cclint: model extraction: %v\n", err)
			os.Exit(2)
		}
		if reason != "" {
			findings = append(findings, lint.Finding{
				Pos: extract.ArtifactPath, Check: "model-stale", Message: reason,
			})
		}
		break
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		// The payload type lives in obs so run artifacts (ccnuma-run/v1)
		// can embed cclint output in their tooling section verbatim.
		payload := obs.LintReport{
			Packages: len(pkgs),
			Findings: make([]obs.LintFindingDoc, 0, len(findings)),
		}
		for _, f := range findings {
			payload.Findings = append(payload.Findings, obs.LintFindingDoc{
				Pos: f.Pos, Check: f.Check, Message: f.Message,
			})
		}
		if err := enc.Encode(payload); err != nil {
			fmt.Fprintf(os.Stderr, "cclint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
		}
		fmt.Fprintf(os.Stderr, "cclint: %d package(s), %d finding(s)\n", len(pkgs), len(findings))
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
