// Command ccbench is the performance-regression harness for the simulator
// itself: it times the event engine's hot loops (events/sec, allocs/event)
// and SizeTest end-to-end regenerations (tables, chaos campaigns) both
// serially and across the parallel runner, writes a versioned
// ccnuma-bench/v1 artifact (BENCH_<date>_<fp>.json), and compares the numbers
// against the previous artifact, failing when a metric regressed past a
// configurable threshold.
//
// Timing metrics describe the host, not the simulated machine, so
// artifacts record GOMAXPROCS alongside every number; comparisons across
// different hosts are advisory only.
//
// Usage:
//
//	ccbench                   # full run, writes BENCH_<date>_<fp>.json, compares vs newest previous
//	ccbench -smoke            # quick gate for make check: no file written, generous threshold
//	ccbench -jobs 4           # parallel-section worker count
//	ccbench -baseline BENCH_2026-08-01_0011223344556677.json -threshold 10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"ccnuma/internal/chaos"
	"ccnuma/internal/exp"
	"ccnuma/internal/obs"
	"ccnuma/internal/runner"
	"ccnuma/internal/scenario"
	"ccnuma/internal/sim"
	"ccnuma/internal/workload"
)

// BenchSchema versions the artifact layout, ccnuma-run/v1 style.
const BenchSchema = "ccnuma-bench/v1"

// Doc is the whole benchmark artifact.
type Doc struct {
	Schema     string `json:"schema"`
	Generated  string `json:"generated"` // RFC 3339 wall-clock timestamp
	Go         string `json:"go"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Jobs       int    `json:"jobs"`
	Smoke      bool   `json:"smoke,omitempty"`

	// Micro times the engine hot loops in isolation.
	Micro []MicroEntry `json:"micro"`
	// E2E times whole SizeTest regenerations on one goroutine.
	E2E []E2EEntry `json:"e2e"`
	// Parallel re-times the E2E workloads across the runner pool.
	Parallel []ParallelEntry `json:"parallel"`

	// Scenario embeds the canonical scenario the chaos section ran, and
	// ScenarioFingerprint is its stable hash (also the artifact-name
	// suffix, so same-day runs of different scenarios never collide).
	Scenario            json.RawMessage `json:"scenario,omitempty"`
	ScenarioFingerprint string          `json:"scenarioFingerprint,omitempty"`

	// Baseline names the artifact these numbers were compared against
	// (empty on the first run). BaselineGoMaxProcs records the baseline
	// host's GOMAXPROCS: when it differs from this run's, every wall-clock
	// comparison is advisory and the run says so.
	Baseline           string   `json:"baseline,omitempty"`
	BaselineGoMaxProcs int      `json:"baselineGomaxprocs,omitempty"`
	Regressions        []string `json:"regressions,omitempty"`
}

// MicroEntry is one engine microbenchmark result. Events is part of the
// identity: entries with different event budgets are never compared.
type MicroEntry struct {
	Name           string  `json:"name"`
	Events         uint64  `json:"events"`
	NsPerEvent     float64 `json:"ns_per_event"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
}

// E2EEntry is one serial end-to-end regeneration timing.
type E2EEntry struct {
	Name   string  `json:"name"`
	Runs   int     `json:"runs"` // simulations executed
	WallMs float64 `json:"wall_ms"`
}

// ParallelEntry compares a serial regeneration against the same work on
// the runner pool. Speedup is SerialMs/ParallelMs; on a single-core host
// it hovers near 1.0 regardless of Jobs. Utilization is the pool's
// busy-workers-over-time recording for the parallel run, which is what
// distinguishes "the host has one core" from "the workers sat idle".
type ParallelEntry struct {
	Name        string             `json:"name"`
	Runs        int                `json:"runs"`
	Jobs        int                `json:"jobs"`
	SerialMs    float64            `json:"serial_ms"`
	ParallelMs  float64            `json:"parallel_ms"`
	Speedup     float64            `json:"speedup"`
	Utilization *obs.RunnerUtilDoc `json:"utilization,omitempty"`
}

func main() {
	outDir := flag.String("out", ".", "directory for BENCH_<date>_<fingerprint>.json and baseline discovery")
	outFile := flag.String("o", "", "explicit output path (default <out>/BENCH_<date>_<fingerprint>.json)")
	baseline := flag.String("baseline", "", "baseline artifact to compare against (default: newest other BENCH_*.json in -out by mtime)")
	threshold := flag.Float64("threshold", 25, "regression threshold in percent; a metric this much worse than the baseline fails the run")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "worker count for the parallel section")
	allowProcsMismatch := flag.Bool("allow-procs-mismatch", false, "compare against a baseline recorded at a different GOMAXPROCS (wall-clock numbers are not comparable across core counts)")
	smoke := flag.Bool("smoke", false, "gate mode: no artifact written, threshold x4 (budgets stay identical so every metric is comparable with the committed artifact)")
	specPath := flag.String("spec", "", "drive the chaos section from a ccnuma-scenario/v1 file instead of the built-in campaign")
	printSpec := flag.Bool("print-spec", false, "print the resolved canonical chaos scenario and exit without benchmarking")
	flag.Parse()

	// The chaos section is a scenario like any other run: the built-in
	// campaign is the ccchaos default machine (4x2 robust) doing 10 fft
	// schedules, and -spec substitutes a different one. Jobs stays out of
	// the spec so the fingerprint is host-independent.
	spec := scenario.Default()
	if *specPath != "" {
		var err error
		spec, err = scenario.Load(*specPath)
		if err != nil {
			fatal(err)
		}
	} else {
		spec.Machine.Nodes, spec.Machine.ProcsPerNode = 4, 2
		spec.Workload = scenario.Workload{App: "fft", Size: "test"}
		spec.Faults = &scenario.FaultPlan{Schedules: 10, BaseSeed: 1}
	}
	if !spec.Machine.Robust() {
		spec.Machine = spec.Machine.WithRobustness()
	}
	if spec.Workload.App == "all" {
		spec.Workload.App = "fft"
	}
	faults := spec.EnsureFaults()
	canon, err := spec.Canonical()
	if err != nil {
		fatal(err)
	}
	if *printSpec {
		os.Stdout.Write(canon)
		return
	}
	fp, err := spec.Fingerprint()
	if err != nil {
		fatal(err)
	}

	doc := &Doc{
		Schema:              BenchSchema,
		Generated:           time.Now().UTC().Format(time.RFC3339),
		Go:                  runtime.Version(),
		GoMaxProcs:          runtime.GOMAXPROCS(0),
		Jobs:                *jobs,
		Smoke:               *smoke,
		Scenario:            canon,
		ScenarioFingerprint: fp,
	}

	// Budgets are the same in smoke and full mode: comparison matches
	// entries on (name, events/runs), so a reduced smoke budget would
	// silently compare nothing against a full-run baseline.
	const microEvents = 3_000_000
	chaosSchedules := faults.Schedules
	if *smoke {
		*threshold *= 4
	}

	fmt.Printf("ccbench: %s, GOMAXPROCS=%d, jobs=%d\n", doc.Go, doc.GoMaxProcs, *jobs)

	// Engine microbenchmarks: the same workload shapes as the Benchmark*
	// functions in internal/sim, timed over a fixed event budget so runs
	// are comparable across invocations.
	for _, mb := range []struct {
		name string
		fn   func(events int) obs.PerfDoc
	}{
		{"engine/schedule-step", microScheduleStep},
		{"engine/mixed-horizon", microMixedHorizon},
		{"engine/same-cycle-burst", microSameCycleBurst},
	} {
		perf := mb.fn(microEvents)
		e := MicroEntry{
			Name:           mb.name,
			Events:         perf.Events,
			NsPerEvent:     1e6 * perf.WallMs / float64(perf.Events),
			EventsPerSec:   perf.EventsPerSec,
			AllocsPerEvent: perf.AllocsPerEvent,
			BytesPerEvent:  perf.BytesPerEvent,
		}
		doc.Micro = append(doc.Micro, e)
		fmt.Printf("  %-24s %8.1f ns/event  %6.2f Mevents/s  %5.2f allocs/event\n",
			e.Name, e.NsPerEvent, e.EventsPerSec/1e6, e.AllocsPerEvent)
	}

	// End-to-end regenerations, serial then parallel. Each builds fresh
	// suites/campaigns so memo caches never carry between timings.
	table6Name := "tables/table6-test"
	wallSerial, runs := timeTable6(1)
	doc.E2E = append(doc.E2E, E2EEntry{Name: table6Name, Runs: runs, WallMs: wallSerial})
	fmt.Printf("  %-24s %8.0f ms serial (%d sims)\n", table6Name, wallSerial, runs)
	if *jobs > 1 {
		u := &runner.Usage{}
		stop := runner.Observe(u)
		wallPar, _ := timeTable6(*jobs)
		stop()
		e := parallelEntry(table6Name, runs, *jobs, wallSerial, wallPar)
		e.Utilization = obs.NewRunnerUtilDoc(u, utilBuckets)
		doc.Parallel = append(doc.Parallel, e)
		fmt.Printf("  %-24s %8.0f ms at jobs=%d (speedup %.2fx%s)\n",
			table6Name, wallPar, *jobs, wallSerial/wallPar, utilNote(e.Utilization, *jobs))
	}

	chaosName := fmt.Sprintf("chaos/%s-x%d", spec.Workload.App, chaosSchedules)
	wallSerial = timeChaos(spec, 1)
	doc.E2E = append(doc.E2E, E2EEntry{Name: chaosName, Runs: chaosSchedules, WallMs: wallSerial})
	fmt.Printf("  %-24s %8.0f ms serial (%d schedules)\n", chaosName, wallSerial, chaosSchedules)
	if *jobs > 1 {
		u := &runner.Usage{}
		stop := runner.Observe(u)
		wallPar := timeChaos(spec, *jobs)
		stop()
		e := parallelEntry(chaosName, chaosSchedules, *jobs, wallSerial, wallPar)
		e.Utilization = obs.NewRunnerUtilDoc(u, utilBuckets)
		doc.Parallel = append(doc.Parallel, e)
		fmt.Printf("  %-24s %8.0f ms at jobs=%d (speedup %.2fx%s)\n",
			chaosName, wallPar, *jobs, wallSerial/wallPar, utilNote(e.Utilization, *jobs))
	}

	// Compare against the previous artifact.
	outPath := *outFile
	if outPath == "" {
		outPath = artifactPath(*outDir, fp)
	}
	basePath := *baseline
	if basePath == "" {
		// A smoke run writes nothing, so today's artifact (if committed) is
		// a legitimate baseline; a full run must not compare against the
		// file it is about to overwrite.
		skip := outPath
		if *smoke {
			skip = ""
		}
		basePath = newestBaseline(*outDir, skip)
	}
	if basePath != "" {
		base, err := readDoc(basePath)
		if err != nil {
			fatal(fmt.Errorf("baseline %s: %w", basePath, err))
		}
		doc.Baseline = filepath.Base(basePath)
		doc.BaselineGoMaxProcs = base.GoMaxProcs
		if base.GoMaxProcs != doc.GoMaxProcs {
			// A baseline from a different core count measures a different
			// machine: serial-vs-parallel speedups recorded at GOMAXPROCS=1
			// are oversubscription numbers, and comparing against them
			// produces phantom regressions (or hides real ones). A full run
			// (whose artifact becomes the next baseline) refuses the
			// comparison unless explicitly overridden; the smoke gate is
			// already documented as advisory and only warns.
			if !*smoke && !*allowProcsMismatch {
				fatal(fmt.Errorf("baseline %s was recorded at GOMAXPROCS=%d but this run is GOMAXPROCS=%d; re-record the baseline on this host or pass -allow-procs-mismatch to compare anyway",
					filepath.Base(basePath), base.GoMaxProcs, doc.GoMaxProcs))
			}
			fmt.Printf("warning: baseline %s was recorded at GOMAXPROCS=%d, this run is GOMAXPROCS=%d; wall-clock comparison is advisory — re-record the baseline on this host\n",
				filepath.Base(basePath), base.GoMaxProcs, doc.GoMaxProcs)
		}
		doc.Regressions = compare(base, doc, *threshold)
		if len(doc.Regressions) == 0 {
			fmt.Printf("baseline %s: no regressions past %.0f%%\n", basePath, *threshold)
		} else {
			for _, r := range doc.Regressions {
				fmt.Printf("REGRESSION: %s\n", r)
			}
		}
	} else {
		fmt.Println("no baseline artifact found; nothing to compare against")
	}

	if !*smoke {
		if err := writeDoc(outPath, doc); err != nil {
			fatal(err)
		}
		fmt.Printf("artifact: %s\n", outPath)
	}
	if len(doc.Regressions) > 0 {
		os.Exit(2)
	}
}

func parallelEntry(name string, runs, jobs int, serialMs, parallelMs float64) ParallelEntry {
	return ParallelEntry{
		Name: name, Runs: runs, Jobs: jobs,
		SerialMs: serialMs, ParallelMs: parallelMs,
		Speedup: serialMs / parallelMs,
	}
}

// utilBuckets is the busy-workers series resolution stored per parallel
// entry.
const utilBuckets = 32

// utilNote renders the pool-utilization suffix of a parallel progress
// line: mean and peak busy workers over the pooled phase.
func utilNote(u *obs.RunnerUtilDoc, jobs int) string {
	if u == nil {
		return ""
	}
	return fmt.Sprintf(", avg %.1f/%d workers busy, peak %d", u.AvgBusy, jobs, u.PeakBusy)
}

// microScheduleStep: steady-state queue where every executed event re-arms
// itself at a pseudo-random future time (the machine model's dominant
// shape). Mirrors BenchmarkEngineScheduleStep.
func microScheduleStep(events int) obs.PerfDoc {
	const depth = 1024
	rng := rand.New(rand.NewSource(1))
	e := sim.NewEngine()
	var fire func()
	fire = func() { e.After(sim.Time(rng.Intn(64)+1), fire) }
	for i := 0; i < depth; i++ {
		e.At(sim.Time(rng.Intn(64)), fire)
	}
	return measureSteps(e, events)
}

// microMixedHorizon: mostly near events with a tail of far-future
// timeout-like events. Mirrors BenchmarkEngineMixedHorizon.
func microMixedHorizon(events int) obs.PerfDoc {
	const depth = 4096
	rng := rand.New(rand.NewSource(2))
	e := sim.NewEngine()
	var fire func()
	fire = func() {
		if rng.Intn(8) == 0 {
			e.After(sim.Time(rng.Intn(100_000)+10_000), fire)
		} else {
			e.After(sim.Time(rng.Intn(16)+1), fire)
		}
	}
	for i := 0; i < depth; i++ {
		e.At(sim.Time(rng.Intn(64)), fire)
	}
	return measureSteps(e, events)
}

// microSameCycleBurst: bursts of same-cycle events exercising the FIFO
// tie-break path. Mirrors BenchmarkEngineSameCycleBurst.
func microSameCycleBurst(events int) obs.PerfDoc {
	e := sim.NewEngine()
	nop := func() {}
	return obs.MeasurePerf(func() uint64 {
		var executed uint64
		for int(executed) < events {
			t := e.Now() + 1
			for j := 0; j < 64; j++ {
				e.At(t, nop)
			}
			for j := 0; j < 64; j++ {
				if !e.Step() {
					fatal(fmt.Errorf("ccbench: burst queue drained unexpectedly"))
				}
				executed++
			}
		}
		return executed
	})
}

func measureSteps(e *sim.Engine, events int) obs.PerfDoc {
	return obs.MeasurePerf(func() uint64 {
		for i := 0; i < events; i++ {
			if !e.Step() {
				fatal(fmt.Errorf("ccbench: queue drained unexpectedly"))
			}
		}
		return uint64(events)
	})
}

// timeTable6 regenerates Table 6 at SizeTest on a fresh suite and returns
// the wall time in milliseconds and the number of simulations it ran.
func timeTable6(jobs int) (float64, int) {
	s := exp.NewSuite(workload.SizeTest)
	s.Jobs = jobs
	s.CollectArtifacts = true
	start := time.Now()
	if _, err := s.Table6(); err != nil {
		fatal(err)
	}
	return float64(time.Since(start).Nanoseconds()) / 1e6, len(s.Artifacts())
}

// timeChaos runs the scenario's seeded chaos campaign and returns the wall
// time in milliseconds.
func timeChaos(spec *scenario.Spec, jobs int) float64 {
	size, err := spec.Size()
	if err != nil {
		fatal(err)
	}
	faults := spec.Faults
	events := faults.Events
	if events <= 0 {
		events = 2 + spec.Machine.Nodes
	}
	c := &chaos.Campaign{
		Cfg:       spec.Machine,
		Size:      size,
		SizeName:  spec.Workload.Size,
		First:     faults.First,
		Schedules: faults.Schedules,
		Events:    events,
		BaseSeed:  faults.BaseSeed,
		Jobs:      jobs,
		Quiet:     true,
		Out:       io.Discard,
	}
	start := time.Now()
	failed, err := c.RunApp(spec.Workload.App)
	if err != nil {
		fatal(err)
	}
	if failed != 0 {
		fatal(fmt.Errorf("ccbench: %d chaos schedules failed to recover", failed))
	}
	return float64(time.Since(start).Nanoseconds()) / 1e6
}

// compare returns a description of every metric in next that is worse than
// the matching metric in prev by more than threshold percent. Entries
// match on name plus workload size (events / runs); host-dependent speedup
// is reported but never compared.
func compare(prev, next *Doc, threshold float64) []string {
	var out []string
	worse := func(name, metric string, old, new float64) {
		if old <= 0 {
			return
		}
		pct := 100 * (new - old) / old
		if pct > threshold {
			out = append(out, fmt.Sprintf("%s %s: %.2f -> %.2f (+%.0f%% > %.0f%%)",
				name, metric, old, new, pct, threshold))
		}
	}
	prevMicro := map[string]MicroEntry{}
	for _, e := range prev.Micro {
		prevMicro[e.Name] = e
	}
	for _, e := range next.Micro {
		p, ok := prevMicro[e.Name]
		if !ok || p.Events != e.Events {
			continue
		}
		worse(e.Name, "ns/event", p.NsPerEvent, e.NsPerEvent)
		worse(e.Name, "allocs/event", p.AllocsPerEvent, e.AllocsPerEvent)
	}
	prevE2E := map[string]E2EEntry{}
	for _, e := range prev.E2E {
		prevE2E[e.Name] = e
	}
	for _, e := range next.E2E {
		p, ok := prevE2E[e.Name]
		if !ok || p.Runs != e.Runs {
			continue
		}
		worse(e.Name, "wall_ms", p.WallMs, e.WallMs)
	}
	return out
}

// artifactPath names the output artifact BENCH_<date>_<fp8>.json (the
// scenario fingerprint keeps same-day runs of different scenarios apart)
// and appends a -2, -3, ... sequence suffix instead of overwriting an
// existing same-scenario artifact.
func artifactPath(dir, fingerprint string) string {
	base := "BENCH_" + time.Now().UTC().Format("2006-01-02") + "_" + fingerprint[:8]
	path := filepath.Join(dir, base+".json")
	for seq := 2; ; seq++ {
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path
		}
		path = filepath.Join(dir, fmt.Sprintf("%s-%d.json", base, seq))
	}
}

// newestBaseline picks the most recently modified BENCH_*.json in dir
// (names no longer sort chronologically once fingerprint and sequence
// suffixes are in play), skipping the file about to be written.
func newestBaseline(dir, outPath string) string {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return ""
	}
	best := ""
	var bestTime time.Time
	for _, m := range matches {
		if m == outPath {
			continue
		}
		info, err := os.Stat(m)
		if err != nil {
			continue
		}
		if best == "" || info.ModTime().After(bestTime) {
			best, bestTime = m, info.ModTime()
		}
	}
	return best
}

func readDoc(path string) (*Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	d := &Doc{}
	if err := json.Unmarshal(data, d); err != nil {
		return nil, err
	}
	if d.Schema != BenchSchema {
		return nil, fmt.Errorf("schema %q, want %q", d.Schema, BenchSchema)
	}
	return d, nil
}

func writeDoc(path string, d *Doc) error {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccbench:", err)
	os.Exit(1)
}
