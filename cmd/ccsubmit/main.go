// Command ccsubmit is the ccserved client: it posts a scenario document
// to a running ccserved, prints the per-cell outcome table, and can fetch
// stored artifacts by fingerprint. With -wait it honors 429 Retry-After
// hints instead of failing, so scripted sweeps survive a busy server.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"ccnuma/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8347", "ccserved address")
		scenPath = flag.String("scenario", "", "scenario JSON to submit")
		fetch    = flag.String("fetch", "", "fetch the artifact for this fingerprint instead of submitting")
		out      = flag.String("out", "", "write the fetched artifact (or full submit response) here instead of stdout")
		wait     = flag.Bool("wait", false, "on 429, honor Retry-After and resubmit instead of failing")
	)
	flag.Parse()
	if err := run(*addr, *scenPath, *fetch, *out, *wait); err != nil {
		fmt.Fprintln(os.Stderr, "ccsubmit:", err)
		os.Exit(1)
	}
}

func run(addr, scenPath, fetch, out string, wait bool) error {
	base := "http://" + addr
	switch {
	case fetch != "":
		return fetchArtifact(base, fetch, out)
	case scenPath != "":
		return submit(base, scenPath, out, wait)
	default:
		return fmt.Errorf("one of -scenario or -fetch is required")
	}
}

func submit(base, scenPath, out string, wait bool) error {
	doc, err := os.ReadFile(scenPath)
	if err != nil {
		return err
	}
	for {
		resp, err := http.Post(base+"/v1/submit", "application/json", bytes.NewReader(doc))
		if err != nil {
			return err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusTooManyRequests && wait {
			delay := 1
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				delay = ra
			}
			fmt.Fprintf(os.Stderr, "ccsubmit: server busy, retrying in %ds\n", delay)
			time.Sleep(time.Duration(delay) * time.Second)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("submit: %s: %s", resp.Status, bytes.TrimSpace(body))
		}
		return report(body, out)
	}
}

// report prints the per-cell outcome table and optionally saves the raw
// response document.
func report(body []byte, out string) error {
	var sr serve.SubmitResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		return fmt.Errorf("submit response: %w", err)
	}
	fmt.Printf("submission %s: %d cells\n", sr.Fingerprint, len(sr.Cells))
	for _, c := range sr.Cells {
		loc := ""
		if c.Arch != "" {
			loc = fmt.Sprintf(" %-6s value=%-6d", c.Arch, c.Value)
		}
		switch c.Status {
		case serve.StatusError:
			fmt.Printf("  %s%s %-8s [%s] %s\n", c.Fp, loc, c.Status, c.Failure.Class, c.Failure.Message)
		default:
			fmt.Printf("  %s%s %-8s exec=%d cycles\n", c.Fp, loc, c.Status, c.ExecCycles)
		}
	}
	if out != "" {
		return os.WriteFile(out, body, 0o666)
	}
	return nil
}

func fetchArtifact(base, fp, out string) error {
	resp, err := http.Get(base + "/v1/artifact/" + fp)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fetch %s: %s: %s", fp, resp.Status, bytes.TrimSpace(body))
	}
	if out != "" {
		return os.WriteFile(out, body, 0o666)
	}
	_, err = os.Stdout.Write(body)
	return err
}
