// Command ccsweep sweeps one architectural parameter across values and
// architectures, emitting CSV for plotting (the raw material behind the
// paper's sensitivity figures). Grid cells are independent simulations, so
// they run concurrently (-jobs); rows are still emitted in grid order, so
// the CSV, artifacts, and error behaviour are identical for any -jobs.
//
// Usage:
//
//	ccsweep -app ocean -param netlat -values 14,50,100,200 -archs HWC,PPC
//	ccsweep -app fft -param line -values 32,64,128
//	ccsweep -app radix -param ppn -values 1,2,4,8 -jobs 4
//	ccsweep -app ocean -param engines -values 1,2,4 -archs PPC
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ccnuma/internal/config"
	"ccnuma/internal/machine"
	"ccnuma/internal/obs"
	"ccnuma/internal/runner"
	"ccnuma/internal/sim"
	"ccnuma/internal/stats"
	"ccnuma/internal/workload"
)

func main() {
	app := flag.String("app", "ocean", "application to sweep")
	param := flag.String("param", "netlat", "parameter: netlat, line, ppn, engines, dircache, banks, hoplat (mesh)")
	values := flag.String("values", "14,50,100,200", "comma-separated parameter values")
	archs := flag.String("archs", "HWC,PPC", "comma-separated architectures")
	sizeFlag := flag.String("size", "test", "problem size: test, base, large")
	nodes := flag.Int("nodes", 4, "SMP nodes (ignored by -param ppn, which fixes total processors)")
	ppn := flag.Int("ppn", 2, "processors per node")
	jsonPath := flag.String("json", "", "also write an array of run-artifact documents to this file")
	seed := flag.Int64("seed", 0, "workload input seed (0 = the kernel's fixed default input)")
	jobs := flag.Int("jobs", 0, "grid cells to simulate concurrently (0 = GOMAXPROCS; 1 = serial; output is identical for any value)")
	flag.Parse()

	var size workload.SizeClass
	switch *sizeFlag {
	case "test":
		size = workload.SizeTest
	case "base":
		size = workload.SizeBase
	case "large":
		size = workload.SizeLarge
	default:
		fatal(fmt.Errorf("unknown size %q", *sizeFlag))
	}

	// The sweep grid, value-major: the first architecture of each value
	// group is that group's penalty baseline.
	type cell struct {
		valueStr string
		arch     string
	}
	var cells []cell
	valueList := strings.Split(*values, ",")
	archList := strings.Split(*archs, ",")
	for _, vs := range valueList {
		for _, arch := range archList {
			cells = append(cells, cell{valueStr: vs, arch: strings.TrimSpace(arch)})
		}
	}

	type cellOut struct {
		value int
		cfg   config.Config
		run   *stats.Run
	}
	var artifacts []*obs.Artifact
	var baseline *stats.Run
	fmt.Println("app,param,value,arch,exec_cycles,rccpi_x1000,util_pct,queue_ns,penalty_vs_first_arch_pct")
	_, err := runner.MapStream(context.Background(), *jobs, len(cells),
		func(i int) (cellOut, error) {
			c := cells[i]
			v, err := strconv.Atoi(strings.TrimSpace(c.valueStr))
			if err != nil {
				return cellOut{}, err
			}
			cfg := config.Base()
			cfg, err = cfg.WithArch(c.arch)
			if err != nil {
				return cellOut{}, err
			}
			cfg.Nodes, cfg.ProcsPerNode = *nodes, *ppn
			cfg.SimLimit = 50_000_000_000
			if err := apply(&cfg, *param, v); err != nil {
				return cellOut{}, err
			}
			r, err := run(cfg, *app, size, *seed)
			if err != nil {
				return cellOut{}, err
			}
			return cellOut{value: v, cfg: cfg, run: r}, nil
		},
		func(i int, out cellOut) {
			if i%len(archList) == 0 {
				baseline = out.run
			}
			penalty := 100 * stats.Penalty(baseline, out.run)
			r := out.run
			fmt.Printf("%s,%s,%d,%s,%d,%.3f,%.2f,%.0f,%.1f\n",
				*app, *param, out.value, cells[i].arch, r.ExecTime, 1000*r.RCCPI(),
				100*r.AvgUtilization(-1), r.AvgQueueDelayNs(-1), penalty)
			if *jsonPath != "" {
				a := obs.NewArtifact("ccsweep", *sizeFlag, &out.cfg, r)
				a.Seed = *seed
				p := penalty
				a.PenaltyVsBaselinePct = &p
				artifacts = append(artifacts, a)
			}
		})
	if err != nil {
		fatal(unwrapJob(err))
	}
	if *jsonPath != "" {
		if err := obs.WriteArtifactsFile(*jsonPath, artifacts); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "artifacts: %s (%d runs)\n", *jsonPath, len(artifacts))
	}
}

// unwrapJob strips the runner's job-index wrapper so error messages match
// the serial loop's.
func unwrapJob(err error) error {
	var je *runner.JobError
	if errors.As(err, &je) {
		return je.Err
	}
	return err
}

// apply sets the swept parameter on the configuration.
func apply(cfg *config.Config, param string, v int) error {
	switch param {
	case "netlat":
		cfg.NetLatency = sim.Time(v)
	case "line":
		cfg.LineSize = v
	case "ppn":
		total := cfg.Nodes * cfg.ProcsPerNode
		if total%v != 0 {
			return fmt.Errorf("ppn %d does not divide %d processors", v, total)
		}
		cfg.Nodes, cfg.ProcsPerNode = total/v, v
	case "engines":
		cfg.NumEngines = v
		if v > 2 {
			cfg.Split = config.SplitRegion
		}
	case "dircache":
		cfg.DirCacheEntries = v
	case "banks":
		cfg.MemBanks = v
	case "hoplat":
		cfg.Topology = config.TopoMesh2D
		cfg.NetHopLatency = sim.Time(v)
	default:
		return fmt.Errorf("unknown parameter %q", param)
	}
	return nil
}

func run(cfg config.Config, app string, size workload.SizeClass, seed int64) (*stats.Run, error) {
	m, err := machine.New(cfg, app)
	if err != nil {
		return nil, err
	}
	w, err := workload.NewSeeded(app, size, m.NProcs(), seed)
	if err != nil {
		return nil, err
	}
	if err := w.Setup(m); err != nil {
		return nil, err
	}
	r, err := m.Run(w.Body)
	if err != nil {
		return nil, err
	}
	if err := w.Verify(); err != nil {
		return nil, err
	}
	return r, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccsweep:", err)
	os.Exit(1)
}
