// Command ccsweep sweeps one architectural parameter across values and
// architectures, emitting CSV for plotting (the raw material behind the
// paper's sensitivity figures). The grid is a ccnuma-scenario/v1 sweep
// section — flags build one implicitly, -spec loads one from a file — and
// grid cells are independent simulations, so they run concurrently
// (-jobs); rows are still emitted in grid order, so the CSV, artifacts,
// and error behaviour are identical for any -jobs.
//
// Usage:
//
//	ccsweep -app ocean -param netlat -values 14,50,100,200 -archs HWC,PPC
//	ccsweep -app fft -param line -values 32,64,128
//	ccsweep -app radix -param ppn -values 1,2,4,8 -jobs 4
//	ccsweep -spec examples/scenarios/2hwc-vs-2ppc.json -json out/sweep.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"ccnuma/internal/config"
	"ccnuma/internal/machine"
	"ccnuma/internal/obs"
	"ccnuma/internal/runner"
	"ccnuma/internal/scenario"
	"ccnuma/internal/stats"
	"ccnuma/internal/workload"
)

func main() {
	flag.String("app", "ocean", "application to sweep")
	flag.String("param", "netlat", "parameter: netlat, line, ppn, engines, dircache, banks, hoplat (mesh)")
	flag.String("values", "14,50,100,200", "comma-separated parameter values")
	flag.String("archs", "HWC,PPC", "comma-separated architectures")
	flag.String("size", "test", "problem size: test, base, large")
	flag.Int("nodes", 4, "SMP nodes (ignored by -param ppn, which fixes total processors)")
	flag.Int("ppn", 2, "processors per node")
	flag.Int64("seed", 0, "workload input seed (0 = the kernel's fixed default input)")
	flag.Int("jobs", 0, "grid cells to simulate concurrently (0 = GOMAXPROCS; 1 = serial; output is identical for any value)")
	specPath := flag.String("spec", "", "load a ccnuma-scenario/v1 file; explicit flags override its fields")
	printSpec := flag.Bool("print-spec", false, "print the resolved canonical scenario and exit without simulating")
	jsonPath := flag.String("json", "", "also write an array of run-artifact documents to this file")
	flag.Parse()

	spec, err := scenario.FromFlags(flag.CommandLine, *specPath, "", nil)
	if err != nil {
		fatal(err)
	}
	sweep := spec.EnsureSweep()
	canon, err := spec.Canonical()
	if err != nil {
		fatal(err)
	}
	if *printSpec {
		os.Stdout.Write(canon)
		return
	}
	fp, err := spec.Fingerprint()
	if err != nil {
		fatal(err)
	}

	app := spec.Workload.App
	size, err := spec.Size()
	if err != nil {
		fatal(err)
	}

	// The sweep grid, value-major: the first architecture of each value
	// group is that group's penalty baseline.
	type cell struct {
		value int
		arch  string
	}
	var cells []cell
	for _, v := range sweep.Values {
		for _, arch := range sweep.Archs {
			cells = append(cells, cell{value: v, arch: arch})
		}
	}

	type cellOut struct {
		cfg config.Config
		run *stats.Run
	}
	var artifacts []*obs.Artifact
	var baseline *stats.Run
	fmt.Println("app,param,value,arch,exec_cycles,rccpi_x1000,util_pct,queue_ns,penalty_vs_first_arch_pct")
	_, err = runner.MapStream(context.Background(), spec.Jobs, len(cells),
		func(i int) (cellOut, error) {
			c := cells[i]
			cfg, err := spec.Machine.WithArch(c.arch)
			if err != nil {
				return cellOut{}, err
			}
			if err := scenario.ApplySweepValue(&cfg, sweep.Param, c.value); err != nil {
				return cellOut{}, err
			}
			r, err := run(cfg, app, size, spec.Workload.Seed)
			if err != nil {
				return cellOut{}, err
			}
			return cellOut{cfg: cfg, run: r}, nil
		},
		func(i int, out cellOut) {
			if i%len(sweep.Archs) == 0 {
				baseline = out.run
			}
			penalty := 100 * stats.Penalty(baseline, out.run)
			r := out.run
			fmt.Printf("%s,%s,%d,%s,%d,%.3f,%.2f,%.0f,%.1f\n",
				app, sweep.Param, cells[i].value, cells[i].arch, r.ExecTime, 1000*r.RCCPI(),
				100*r.AvgUtilization(-1), r.AvgQueueDelayNs(-1), penalty)
			if *jsonPath != "" {
				a := obs.NewArtifact("ccsweep", spec.Workload.Size, &out.cfg, r)
				a.Seed = spec.Workload.Seed
				a.Scenario = canon
				a.ScenarioFingerprint = fp
				p := penalty
				a.PenaltyVsBaselinePct = &p
				artifacts = append(artifacts, a)
			}
		})
	if err != nil {
		fatal(unwrapJob(err))
	}
	if *jsonPath != "" {
		if err := obs.WriteArtifactsFile(*jsonPath, artifacts); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "artifacts: %s (%d runs)\n", *jsonPath, len(artifacts))
	}
}

// unwrapJob strips the runner's job-index wrapper so error messages match
// the serial loop's.
func unwrapJob(err error) error {
	var je *runner.JobError
	if errors.As(err, &je) {
		return je.Err
	}
	return err
}

func run(cfg config.Config, app string, size workload.SizeClass, seed int64) (*stats.Run, error) {
	m, err := machine.New(cfg, app)
	if err != nil {
		return nil, err
	}
	w, err := workload.NewSeeded(app, size, m.NProcs(), seed)
	if err != nil {
		return nil, err
	}
	if err := w.Setup(m); err != nil {
		return nil, err
	}
	r, err := m.Run(w.Body)
	if err != nil {
		return nil, err
	}
	if err := w.Verify(); err != nil {
		return nil, err
	}
	return r, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccsweep:", err)
	os.Exit(1)
}
