// Command ccsweep sweeps one architectural parameter across values and
// architectures, emitting CSV for plotting (the raw material behind the
// paper's sensitivity figures).
//
// Usage:
//
//	ccsweep -app ocean -param netlat -values 14,50,100,200 -archs HWC,PPC
//	ccsweep -app fft -param line -values 32,64,128
//	ccsweep -app radix -param ppn -values 1,2,4,8
//	ccsweep -app ocean -param engines -values 1,2,4 -archs PPC
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ccnuma/internal/config"
	"ccnuma/internal/machine"
	"ccnuma/internal/obs"
	"ccnuma/internal/sim"
	"ccnuma/internal/stats"
	"ccnuma/internal/workload"
)

func main() {
	app := flag.String("app", "ocean", "application to sweep")
	param := flag.String("param", "netlat", "parameter: netlat, line, ppn, engines, dircache, banks, hoplat (mesh)")
	values := flag.String("values", "14,50,100,200", "comma-separated parameter values")
	archs := flag.String("archs", "HWC,PPC", "comma-separated architectures")
	sizeFlag := flag.String("size", "test", "problem size: test, base, large")
	nodes := flag.Int("nodes", 4, "SMP nodes (ignored by -param ppn, which fixes total processors)")
	ppn := flag.Int("ppn", 2, "processors per node")
	jsonPath := flag.String("json", "", "also write an array of run-artifact documents to this file")
	seed := flag.Int64("seed", 0, "workload input seed (0 = the kernel's fixed default input)")
	flag.Parse()

	var size workload.SizeClass
	switch *sizeFlag {
	case "test":
		size = workload.SizeTest
	case "base":
		size = workload.SizeBase
	case "large":
		size = workload.SizeLarge
	default:
		fatal(fmt.Errorf("unknown size %q", *sizeFlag))
	}

	var artifacts []*obs.Artifact
	fmt.Println("app,param,value,arch,exec_cycles,rccpi_x1000,util_pct,queue_ns,penalty_vs_first_arch_pct")
	for _, vs := range strings.Split(*values, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(vs))
		if err != nil {
			fatal(err)
		}
		var baseline *stats.Run
		for _, arch := range strings.Split(*archs, ",") {
			arch = strings.TrimSpace(arch)
			cfg := config.Base()
			cfg, err := cfg.WithArch(arch)
			if err != nil {
				fatal(err)
			}
			cfg.Nodes, cfg.ProcsPerNode = *nodes, *ppn
			cfg.SimLimit = 50_000_000_000
			if err := apply(&cfg, *param, v); err != nil {
				fatal(err)
			}
			r, err := run(cfg, *app, size, *seed)
			if err != nil {
				fatal(err)
			}
			if baseline == nil {
				baseline = r
			}
			penalty := 100 * stats.Penalty(baseline, r)
			fmt.Printf("%s,%s,%d,%s,%d,%.3f,%.2f,%.0f,%.1f\n",
				*app, *param, v, arch, r.ExecTime, 1000*r.RCCPI(),
				100*r.AvgUtilization(-1), r.AvgQueueDelayNs(-1), penalty)
			if *jsonPath != "" {
				a := obs.NewArtifact("ccsweep", *sizeFlag, &cfg, r)
				a.Seed = *seed
				p := penalty
				a.PenaltyVsBaselinePct = &p
				artifacts = append(artifacts, a)
			}
		}
	}
	if *jsonPath != "" {
		if err := obs.WriteArtifactsFile(*jsonPath, artifacts); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "artifacts: %s (%d runs)\n", *jsonPath, len(artifacts))
	}
}

// apply sets the swept parameter on the configuration.
func apply(cfg *config.Config, param string, v int) error {
	switch param {
	case "netlat":
		cfg.NetLatency = sim.Time(v)
	case "line":
		cfg.LineSize = v
	case "ppn":
		total := cfg.Nodes * cfg.ProcsPerNode
		if total%v != 0 {
			return fmt.Errorf("ppn %d does not divide %d processors", v, total)
		}
		cfg.Nodes, cfg.ProcsPerNode = total/v, v
	case "engines":
		cfg.NumEngines = v
		if v > 2 {
			cfg.Split = config.SplitRegion
		}
	case "dircache":
		cfg.DirCacheEntries = v
	case "banks":
		cfg.MemBanks = v
	case "hoplat":
		cfg.Topology = config.TopoMesh2D
		cfg.NetHopLatency = sim.Time(v)
	default:
		return fmt.Errorf("unknown parameter %q", param)
	}
	return nil
}

func run(cfg config.Config, app string, size workload.SizeClass, seed int64) (*stats.Run, error) {
	m, err := machine.New(cfg, app)
	if err != nil {
		return nil, err
	}
	w, err := workload.NewSeeded(app, size, m.NProcs(), seed)
	if err != nil {
		return nil, err
	}
	if err := w.Setup(m); err != nil {
		return nil, err
	}
	r, err := m.Run(w.Body)
	if err != nil {
		return nil, err
	}
	if err := w.Verify(); err != nil {
		return nil, err
	}
	return r, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccsweep:", err)
	os.Exit(1)
}
