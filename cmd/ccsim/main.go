// Command ccsim runs a single CC-NUMA simulation — one application on one
// coherence-controller architecture under explicit parameters — and prints
// a full statistics report.
//
// Usage:
//
//	ccsim -app ocean -arch PPC
//	ccsim -app fft -arch 2HWC -nodes 8 -ppn 4 -line 32 -netlat 200 -size large
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ccnuma/internal/config"
	"ccnuma/internal/machine"
	"ccnuma/internal/obs"
	"ccnuma/internal/sim"
	"ccnuma/internal/stats"
	"ccnuma/internal/workload"
)

func main() {
	app := flag.String("app", "ocean", fmt.Sprintf("application: %v", workload.Names()))
	arch := flag.String("arch", "HWC", "controller architecture: HWC, PPC, PPCA, 2HWC, 2PPC, 2PPCA")
	engines := flag.Int("engines", 0, "override the protocol engine count (>2 requires -split region)")
	nodes := flag.Int("nodes", 16, "SMP nodes")
	ppn := flag.Int("ppn", 4, "processors per node")
	line := flag.Int("line", 128, "cache line size in bytes")
	netlat := flag.Int("netlat", 14, "network point-to-point latency in CPU cycles")
	sizeFlag := flag.String("size", "base", "problem size: test, base, large")
	split := flag.String("split", "local-remote", "engine split policy: local-remote, round-robin, or region")
	arb := flag.String("arb", "paper", "dispatch arbitration: paper or fifo")
	topo := flag.String("topo", "crossbar", "interconnect topology: crossbar or mesh")
	directPath := flag.Bool("directpath", true, "enable the direct bus/network data path for write-backs")
	dirCache := flag.Int("dircache", 8192, "directory cache entries (0 disables)")
	counters := flag.Bool("counters", false, "dump all raw counters")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON (Perfetto) to this file")
	traceBuf := flag.Int("tracebuf", 1<<18, "trace ring-buffer capacity in events")
	sampleEvery := flag.Int64("sample", 0, "sample machine state every N simulated cycles (0 = off)")
	sampleOut := flag.String("sample-out", "", "time-series output file (.json = JSON, else CSV; default samples.csv)")
	jsonPath := flag.String("json", "", "write the machine-readable run artifact to this file")
	seed := flag.Int64("seed", 0, "workload input seed (0 = the kernel's fixed default input)")
	robust := flag.Bool("robust", false, "enable the robustness knobs: finite queues, NACK/retry, request timeouts, reliable link layer")
	flag.Parse()

	cfg := config.Base()
	var err error
	cfg, err = cfg.WithArch(*arch)
	if err != nil {
		fatal(err)
	}
	cfg.Nodes = *nodes
	cfg.ProcsPerNode = *ppn
	cfg.LineSize = *line
	cfg.NetLatency = sim.Time(*netlat)
	cfg.DirectDataPath = *directPath
	cfg.DirCacheEntries = *dirCache
	cfg.SimLimit = 50_000_000_000
	cfg.NumEngines = *engines
	if *robust {
		cfg = cfg.WithRobustness()
	}
	switch *split {
	case "local-remote":
		cfg.Split = config.SplitLocalRemote
	case "round-robin":
		cfg.Split = config.SplitRoundRobin
	case "region":
		cfg.Split = config.SplitRegion
	default:
		fatal(fmt.Errorf("unknown split %q", *split))
	}
	switch *topo {
	case "crossbar":
		cfg.Topology = config.TopoCrossbar
	case "mesh":
		cfg.Topology = config.TopoMesh2D
	default:
		fatal(fmt.Errorf("unknown topology %q", *topo))
	}
	switch *arb {
	case "paper":
		cfg.Arbitration = config.ArbPaper
	case "fifo":
		cfg.Arbitration = config.ArbFIFO
	default:
		fatal(fmt.Errorf("unknown arbitration %q", *arb))
	}

	var size workload.SizeClass
	switch *sizeFlag {
	case "test":
		size = workload.SizeTest
	case "base":
		size = workload.SizeBase
	case "large":
		size = workload.SizeLarge
	default:
		fatal(fmt.Errorf("unknown size %q", *sizeFlag))
	}

	var tr *obs.Tracer
	if *tracePath != "" {
		tr = obs.NewTracer(obs.WithBuffer(*traceBuf))
	}
	m, err := machine.NewTraced(cfg, *app, tr)
	if err != nil {
		fatal(err)
	}
	var sampler *obs.Sampler
	if *sampleEvery > 0 {
		sampler = obs.NewSampler(sim.Time(*sampleEvery))
		m.AttachSampler(sampler)
	}
	w, err := workload.NewSeeded(*app, size, m.NProcs(), *seed)
	if err != nil {
		fatal(err)
	}
	if err := w.Setup(m); err != nil {
		fatal(err)
	}
	var r *stats.Run
	var runErr error
	perf := obs.MeasurePerf(func() uint64 {
		r, runErr = m.Run(w.Body)
		return m.Eng.Executed()
	})
	if runErr != nil {
		fatal(runErr)
	}
	if err := w.Verify(); err != nil {
		fatal(fmt.Errorf("verification failed: %w", err))
	}
	if tr != nil {
		if err := obs.WriteChromeTraceFile(*tracePath, tr.Events()); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace: %s (%d events, %d dropped by ring wraparound)\n",
			*tracePath, tr.Recorded(), tr.Dropped())
	}
	if sampler != nil {
		out := *sampleOut
		if out == "" {
			out = "samples.csv"
		}
		if err := sampler.WriteFile(out); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "samples: %s (%d rows every %d cycles)\n",
			out, len(sampler.Samples()), sampler.Interval)
	}
	if *jsonPath != "" {
		art := obs.NewArtifact("ccsim", *sizeFlag, &cfg, r)
		art.Seed = *seed
		art.Perf = &perf
		if cfg.Robust() {
			art.Recovery = obs.NewRecoveryDoc(&cfg, r, nil)
		}
		if err := art.WriteFile(*jsonPath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "artifact: %s\n", *jsonPath)
	}

	fmt.Printf("application:        %s (%s)\n", *app, *sizeFlag)
	fmt.Printf("architecture:       %s (%d nodes x %d procs, %dB lines, %d-cycle network)\n",
		cfg.ArchName(), cfg.Nodes, cfg.ProcsPerNode, cfg.LineSize, cfg.NetLatency)
	fmt.Printf("execution time:     %d cycles (%.2f us)\n", r.ExecTime, r.ExecTime.Nanoseconds()/1000)
	fmt.Printf("instructions:       %d\n", r.Instructions)
	fmt.Printf("1000 x RCCPI:       %.3f\n", 1000*r.RCCPI())
	fmt.Printf("controller util:    %.2f%%\n", 100*r.AvgUtilization(-1))
	if cfg.TwoEngines {
		fmt.Printf("  LPE util:         %.2f%% (share %.1f%%, queue %.0f ns)\n",
			100*r.AvgUtilization(0), 100*r.EngineShare(0), r.AvgQueueDelayNs(0))
		fmt.Printf("  RPE util:         %.2f%% (share %.1f%%, queue %.0f ns)\n",
			100*r.AvgUtilization(1), 100*r.EngineShare(1), r.AvgQueueDelayNs(1))
	}
	fmt.Printf("queueing delay:     %.0f ns\n", r.AvgQueueDelayNs(-1))
	fmt.Printf("arrival rate:       %.2f requests/us per controller\n", r.ArrivalRatePerMicrosecond())
	fmt.Printf("requests to CCs:    %d\n", r.TotalArrivals())
	fmt.Printf("engine throughput:  %s\n", perf)

	fmt.Printf("miss latency:       mean %.0f cycles, p50=%.0f p90=%.0f p99=%.0f max=%d (n=%d)\n",
		r.MissLatency.Mean(), r.MissLatency.Percentile(50), r.MissLatency.Percentile(90),
		r.MissLatency.Percentile(99), r.MissLatency.MaxVal, r.MissLatency.Count)
	qd := r.QueueDelayHistogram()
	fmt.Printf("queueing delay dist: p50=%.0f p95=%.0f p99=%.0f max=%d cycles (n=%d)\n",
		qd.Percentile(50), qd.Percentile(95), qd.Percentile(99), qd.MaxVal, qd.Count)
	if cfg.Robust() {
		ns, nr, rt, to, ba, sd := r.RecoveryTotals()
		fmt.Printf("recovery:           nacksSent=%d nacksRecv=%d retries=%d timeouts=%d busAborts=%d strayDrops=%d\n",
			ns, nr, rt, to, ba, sd)
		rl := r.RetryLatencyHistogram()
		fmt.Printf("retry latency:      p50=%.0f p95=%.0f p99=%.0f max=%d cycles (n=%d)\n",
			rl.Percentile(50), rl.Percentile(95), rl.Percentile(99), rl.MaxVal, rl.Count)
	}

	if *counters {
		fmt.Println("\ncounters:")
		names := r.CounterNames()
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %-40s %d\n", n, r.Counter(n))
		}
		fmt.Println()
		fmt.Print(r.MissLatency.Render("miss latency distribution (cycles)"))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccsim:", err)
	os.Exit(1)
}
