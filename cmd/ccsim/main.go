// Command ccsim runs a single CC-NUMA simulation — one application on one
// coherence-controller architecture — and prints a full statistics report.
// The run is described by a ccnuma-scenario/v1 document: flags build one
// implicitly, -spec loads one from a file (with explicit flags overriding
// individual fields), and -replay re-runs the scenario embedded in a
// previously written run artifact, reproducing it byte for byte.
//
// Usage:
//
//	ccsim -app ocean -arch PPC
//	ccsim -app fft -arch 2HWC -nodes 8 -ppn 4 -line 32 -netlat 200 -size large
//	ccsim -spec examples/scenarios/base.json -netlat 200
//	ccsim -spec examples/scenarios/base.json -print-spec
//	ccsim -replay out/run.json -json out/run2.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ccnuma/internal/machine"
	"ccnuma/internal/obs"
	"ccnuma/internal/scenario"
	"ccnuma/internal/sim"
	"ccnuma/internal/stats"
	"ccnuma/internal/workload"
)

func main() {
	flag.String("app", "ocean", fmt.Sprintf("application: %v", workload.Names()))
	flag.String("arch", "HWC", "controller architecture: HWC, PPC, PPCA, 2HWC, 2PPC, 2PPCA")
	flag.Int("engines", 0, "override the protocol engine count (>2 requires -split region)")
	flag.String("node-archs", "", "comma-separated per-node architectures (e.g. HWC,HWC,PPC,PPC); empty = homogeneous -arch")
	flag.Int("nodes", 16, "SMP nodes")
	flag.Int("ppn", 4, "processors per node")
	flag.Int("line", 128, "cache line size in bytes")
	flag.Int("netlat", 14, "network point-to-point latency in CPU cycles")
	flag.String("size", "base", "problem size: test, base, large")
	flag.String("split", "local-remote", "engine split policy: local-remote, round-robin, or region")
	flag.String("arb", "paper", "dispatch arbitration: paper or fifo")
	flag.String("topo", "crossbar", "interconnect topology: crossbar or mesh")
	flag.Bool("directpath", true, "enable the direct bus/network data path for write-backs")
	flag.Int("dircache", 8192, "directory cache entries (0 disables)")
	flag.Int64("seed", 0, "workload input seed (0 = the kernel's fixed default input)")
	flag.Bool("robust", false, "enable the robustness knobs: finite queues, NACK/retry, request timeouts, reliable link layer")
	flag.Bool("attribution", false, "enable per-transaction span tracing and print the miss-latency attribution")
	flag.Int("shards", 1, "event-engine shards running the simulation in parallel (results are identical for any value)")
	specPath := flag.String("spec", "", "load a ccnuma-scenario/v1 file; explicit flags override its fields")
	replayPath := flag.String("replay", "", "re-run the scenario embedded in a run artifact")
	printSpec := flag.Bool("print-spec", false, "print the resolved canonical scenario and exit without simulating")
	counters := flag.Bool("counters", false, "dump all raw counters")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON (Perfetto) to this file")
	traceBuf := flag.Int("tracebuf", 1<<18, "trace ring-buffer capacity in events")
	sampleEvery := flag.Int64("sample", 0, "sample machine state every N simulated cycles (0 = off)")
	sampleOut := flag.String("sample-out", "", "time-series output file (.json = JSON, else CSV; default samples.csv)")
	jsonPath := flag.String("json", "", "write the machine-readable run artifact to this file")
	perfOut := flag.Bool("perf", false, "include host engine-throughput numbers in the artifact (makes it host-dependent)")
	flag.Parse()

	spec, err := scenario.FromFlags(flag.CommandLine, *specPath, *replayPath, nil)
	if err != nil {
		fatal(err)
	}
	canon, err := spec.Canonical()
	if err != nil {
		fatal(err)
	}
	if *printSpec {
		os.Stdout.Write(canon)
		return
	}
	fp, err := spec.Fingerprint()
	if err != nil {
		fatal(err)
	}

	cfg := spec.Machine
	app := spec.Workload.App
	size, err := spec.Size()
	if err != nil {
		fatal(err)
	}

	var tr *obs.Tracer
	if *tracePath != "" {
		tr = obs.NewTracer(obs.WithBuffer(*traceBuf))
	}
	m, err := machine.NewTraced(cfg, app, tr)
	if err != nil {
		fatal(err)
	}
	var sampler *obs.Sampler
	if *sampleEvery > 0 {
		sampler = obs.NewSampler(sim.Time(*sampleEvery))
		m.AttachSampler(sampler)
	}
	w, err := workload.NewSeeded(app, size, m.NProcs(), spec.Workload.Seed)
	if err != nil {
		fatal(err)
	}
	if err := w.Setup(m); err != nil {
		fatal(err)
	}
	var r *stats.Run
	var runErr error
	perf := obs.MeasurePerf(func() uint64 {
		r, runErr = m.Run(w.Body)
		return m.Executed()
	})
	if runErr != nil {
		fatal(runErr)
	}
	if err := w.Verify(); err != nil {
		fatal(fmt.Errorf("verification failed: %w", err))
	}
	if tr != nil {
		if err := obs.WriteChromeTraceFile(*tracePath, tr.Events()); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace: %s (%d events, %d dropped by ring wraparound)\n",
			*tracePath, tr.Recorded(), tr.Dropped())
	}
	if sampler != nil {
		out := *sampleOut
		if out == "" {
			out = "samples.csv"
		}
		if err := sampler.WriteFile(out); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "samples: %s (%d rows every %d cycles)\n",
			out, len(sampler.Samples()), sampler.Interval)
	}
	if *jsonPath != "" {
		art := obs.NewArtifact("ccsim", spec.Workload.Size, &cfg, r)
		art.Seed = spec.Workload.Seed
		art.Scenario = canon
		art.ScenarioFingerprint = fp
		// Host timing is excluded by default so that -replay of the
		// artifact reproduces it byte for byte.
		if *perfOut {
			art.Perf = &perf
		}
		if cfg.Robust() {
			art.Recovery = obs.NewRecoveryDoc(&cfg, r, nil)
		}
		if err := art.WriteFile(*jsonPath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "artifact: %s\n", *jsonPath)
	}

	fmt.Printf("scenario:           %s\n", fp)
	fmt.Printf("application:        %s (%s)\n", app, spec.Workload.Size)
	fmt.Printf("architecture:       %s (%d nodes x %d procs, %dB lines, %d-cycle network)\n",
		cfg.ArchName(), cfg.Nodes, cfg.ProcsPerNode, cfg.LineSize, cfg.NetLatency)
	fmt.Printf("execution time:     %d cycles (%.2f us)\n", r.ExecTime, r.ExecTime.Nanoseconds()/1000)
	fmt.Printf("instructions:       %d\n", r.Instructions)
	fmt.Printf("1000 x RCCPI:       %.3f\n", 1000*r.RCCPI())
	fmt.Printf("controller util:    %.2f%%\n", 100*r.AvgUtilization(-1))
	if cfg.TwoEngines {
		fmt.Printf("  LPE util:         %.2f%% (share %.1f%%, queue %.0f ns)\n",
			100*r.AvgUtilization(0), 100*r.EngineShare(0), r.AvgQueueDelayNs(0))
		fmt.Printf("  RPE util:         %.2f%% (share %.1f%%, queue %.0f ns)\n",
			100*r.AvgUtilization(1), 100*r.EngineShare(1), r.AvgQueueDelayNs(1))
	}
	fmt.Printf("queueing delay:     %.0f ns\n", r.AvgQueueDelayNs(-1))
	fmt.Printf("arrival rate:       %.2f requests/us per controller\n", r.ArrivalRatePerMicrosecond())
	fmt.Printf("requests to CCs:    %d\n", r.TotalArrivals())
	fmt.Printf("engine throughput:  %s\n", perf)

	fmt.Printf("miss latency:       mean %.0f cycles, p50=%.0f p90=%.0f p99=%.0f max=%d (n=%d)\n",
		r.MissLatency.Mean(), r.MissLatency.Percentile(50), r.MissLatency.Percentile(90),
		r.MissLatency.Percentile(99), r.MissLatency.MaxVal, r.MissLatency.Count)
	qd := r.QueueDelayHistogram()
	fmt.Printf("queueing delay dist: p50=%.0f p95=%.0f p99=%.0f max=%d cycles (n=%d)\n",
		qd.Percentile(50), qd.Percentile(95), qd.Percentile(99), qd.MaxVal, qd.Count)
	if cfg.Robust() {
		ns, nr, rt, to, ba, sd := r.RecoveryTotals()
		fmt.Printf("recovery:           nacksSent=%d nacksRecv=%d retries=%d timeouts=%d busAborts=%d strayDrops=%d\n",
			ns, nr, rt, to, ba, sd)
		rl := r.RetryLatencyHistogram()
		fmt.Printf("retry latency:      p50=%.0f p95=%.0f p99=%.0f max=%d cycles (n=%d)\n",
			rl.Percentile(50), rl.Percentile(95), rl.Percentile(99), rl.MaxVal, rl.Count)
	}

	if a := r.Attribution; a != nil {
		fmt.Printf("attribution:        %d transactions, end-to-end mean %.0f cycles, p50=%.0f p95=%.0f p99=%.0f\n",
			a.Completed, a.EndToEnd.Mean(), a.EndToEnd.Percentile(50),
			a.EndToEnd.Percentile(95), a.EndToEnd.Percentile(99))
		for _, st := range a.Stages {
			if st.Total == 0 {
				continue
			}
			fmt.Printf("  %-10s        %6.2f%%  (%d cycles, mean %.0f over %d spans)\n",
				st.Stage, 100*a.StageShare(st.Stage), st.Total, st.Hist.Mean(), st.Hist.Count)
		}
	}

	if *counters {
		fmt.Println("\ncounters:")
		names := r.CounterNames()
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %-40s %d\n", n, r.Counter(n))
		}
		fmt.Println()
		fmt.Print(r.MissLatency.Render("miss latency distribution (cycles)"))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccsim:", err)
	os.Exit(1)
}
